//! Co-packaged DWDM link model: comb laser, ring modulators, serialization,
//! fiber propagation, and FEC latency (Sections III-B and III-C of the paper).
//!
//! The model reproduces the paper's latency budget for intra-rack
//! disaggregation:
//!
//! * electrical–optical–electrical conversion (SERDES + modulation + FEC):
//!   ~15 ns in the paper's 35 ns budget,
//! * fiber propagation at ~5 ns per meter (light at ~0.75 c in silica),
//! * serialization of a flit at the channel rate (e.g. 10 ns for 256 B at
//!   200 Gbps),
//! * the lightweight CXL/PCIe-Gen6 FEC adding 2–3 ns.
//!
//! The headline number the rest of the study uses is the **35 ns** additional
//! LLC-to-memory latency for a worst-case 4 m intra-rack reach (two-meter
//! tall rack, round trip), and 25/30 ns for shorter reaches (Fig. 8).

use crate::fec::FecConfig;
use crate::units::{Bandwidth, Energy, Latency};
use serde::{Deserialize, Serialize};

/// Propagation delay of light in fiber, per meter (index of refraction ~1.5
/// so light travels at roughly 0.75 c: ~5 ns per meter).
pub const FIBER_NS_PER_METER: f64 = 5.0;

/// Default electrical-optical-electrical conversion latency (ns) assumed by
/// the paper for the co-packaged transceiver pair (SERDES, ring modulation,
/// detection, clock recovery).
pub const DEFAULT_OEO_NS: f64 = 15.0;

/// Breakdown of the one-way latency through a DWDM link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkLatencyBreakdown {
    /// Electrical-optical-electrical conversion (both ends combined).
    pub oeo: Latency,
    /// Propagation through the fiber.
    pub propagation: Latency,
    /// Serialization of one flit at the aggregate link rate.
    pub serialization: Latency,
    /// Forward-error-correction encode + decode.
    pub fec: Latency,
}

impl LinkLatencyBreakdown {
    /// Total one-way latency.
    pub fn total(&self) -> Latency {
        self.oeo + self.propagation + self.serialization + self.fec
    }
}

/// A co-packaged DWDM link between two MCMs.
///
/// The link aggregates `channels` wavelengths of `channel_rate` each, shares
/// a single fiber, and is driven by a comb-laser source providing all
/// wavelengths (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DwdmLink {
    /// Number of wavelength channels on the fiber.
    pub channels: u32,
    /// Per-wavelength data rate.
    pub channel_rate: Bandwidth,
    /// Fiber length in meters.
    pub reach_m: f64,
    /// Transceiver energy per bit (including the comb laser share).
    pub energy_per_bit: Energy,
    /// Electrical-optical-electrical conversion latency.
    pub oeo_latency: Latency,
    /// FEC configuration protecting the link.
    pub fec: FecConfig,
    /// Flit size in bytes used for serialization-latency accounting.
    pub flit_bytes: u32,
}

impl DwdmLink {
    /// Aggregate link bandwidth (all channels).
    pub fn bandwidth(&self) -> Bandwidth {
        self.channel_rate * self.channels as f64
    }

    /// One-way propagation latency through the fiber.
    pub fn propagation_latency(&self) -> Latency {
        Latency::from_ns(self.reach_m * FIBER_NS_PER_METER)
    }

    /// Serialization latency of one flit at the aggregate link rate.
    pub fn serialization_latency(&self) -> Latency {
        let bits = self.flit_bytes as f64 * 8.0;
        Latency::from_secs(bits / self.bandwidth().bps())
    }

    /// Latency breakdown for a one-way flit transfer.
    pub fn latency_breakdown(&self) -> LinkLatencyBreakdown {
        LinkLatencyBreakdown {
            oeo: self.oeo_latency,
            propagation: self.propagation_latency(),
            serialization: self.serialization_latency(),
            fec: self.fec.latency(),
        }
    }

    /// Total one-way latency for a flit.
    pub fn one_way_latency(&self) -> Latency {
        self.latency_breakdown().total()
    }

    /// The paper's headline "additional latency for disaggregation": OEO plus
    /// round-trip-worth of propagation (the request/response path between an
    /// LLC and a disaggregated memory module traverses the rack distance).
    ///
    /// For the 4 m worst case this evaluates to ~35 ns.
    pub fn disaggregation_latency(&self) -> Latency {
        self.oeo_latency + self.propagation_latency() + self.fec.latency()
    }

    /// Power drawn by the transmit side of the link when fully utilized.
    pub fn power_w(&self) -> f64 {
        self.energy_per_bit.power_at(self.bandwidth())
    }

    /// Effective goodput after FEC overhead.
    pub fn goodput(&self) -> Bandwidth {
        self.bandwidth() * (1.0 - self.fec.bandwidth_overhead())
    }
}

/// Builder for [`DwdmLink`] with the paper's defaults.
#[derive(Debug, Clone)]
pub struct DwdmLinkBuilder {
    channels: u32,
    channel_rate: Bandwidth,
    reach_m: f64,
    energy_per_bit: Energy,
    oeo_latency: Latency,
    fec: FecConfig,
    flit_bytes: u32,
}

impl Default for DwdmLinkBuilder {
    fn default() -> Self {
        DwdmLinkBuilder {
            // The rack design assumes 64 wavelengths of 25 Gbps per fiber.
            channels: 64,
            channel_rate: Bandwidth::from_gbps(25.0),
            // Worst-case intra-rack reach: 4 meters (round trip of a 2 m rack).
            reach_m: 4.0,
            // Demonstrated comb-laser transceiver pairs: ~0.5 pJ/bit.
            energy_per_bit: Energy::from_pj(0.5),
            oeo_latency: Latency::from_ns(DEFAULT_OEO_NS),
            fec: FecConfig::cxl_lightweight(),
            flit_bytes: 256,
        }
    }
}

impl DwdmLinkBuilder {
    /// Start from the paper's defaults (64 x 25 Gbps, 4 m reach, 0.5 pJ/bit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of wavelength channels.
    pub fn channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Set the per-channel data rate.
    pub fn channel_rate(mut self, rate: Bandwidth) -> Self {
        self.channel_rate = rate;
        self
    }

    /// Set the fiber reach in meters.
    pub fn reach_m(mut self, reach: f64) -> Self {
        self.reach_m = reach;
        self
    }

    /// Set the transceiver energy per bit.
    pub fn energy_per_bit(mut self, e: Energy) -> Self {
        self.energy_per_bit = e;
        self
    }

    /// Set the OEO conversion latency.
    pub fn oeo_latency(mut self, l: Latency) -> Self {
        self.oeo_latency = l;
        self
    }

    /// Set the FEC configuration.
    pub fn fec(mut self, fec: FecConfig) -> Self {
        self.fec = fec;
        self
    }

    /// Set the flit size used in serialization accounting.
    pub fn flit_bytes(mut self, bytes: u32) -> Self {
        self.flit_bytes = bytes;
        self
    }

    /// Build the link.
    pub fn build(self) -> DwdmLink {
        DwdmLink {
            channels: self.channels,
            channel_rate: self.channel_rate,
            reach_m: self.reach_m,
            energy_per_bit: self.energy_per_bit,
            oeo_latency: self.oeo_latency,
            fec: self.fec,
            flit_bytes: self.flit_bytes,
        }
    }
}

/// The three disaggregation latency points evaluated in the paper's
/// sensitivity study (Fig. 8 and 9): 25, 30, and 35 ns.
pub fn paper_latency_points() -> [Latency; 3] {
    [
        Latency::from_ns(25.0),
        Latency::from_ns(30.0),
        Latency::from_ns(35.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_matches_rack_design() {
        let link = DwdmLinkBuilder::new().build();
        // 64 x 25 Gbps = 1600 Gbps per fiber.
        assert!((link.bandwidth().gbps() - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn propagation_is_five_ns_per_meter() {
        let link = DwdmLinkBuilder::new().reach_m(4.0).build();
        assert!((link.propagation_latency().ns() - 20.0).abs() < 1e-9);
        let link1m = DwdmLinkBuilder::new().reach_m(1.0).build();
        assert!((link1m.propagation_latency().ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disaggregation_latency_close_to_35ns() {
        // 15 ns OEO + 20 ns (4 m) propagation + ~2 ns FEC ≈ 35 ns budget.
        let link = DwdmLinkBuilder::new().build();
        let lat = link.disaggregation_latency().ns();
        assert!((34.0..=38.0).contains(&lat), "got {lat} ns");
    }

    #[test]
    fn shorter_reach_gives_paper_sensitivity_points() {
        // ~2 m reach -> about 25-27 ns; the paper's sensitivity points are
        // 25 and 30 ns for improved photonics / shorter racks.
        let link = DwdmLinkBuilder::new().reach_m(2.0).build();
        let lat = link.disaggregation_latency().ns();
        assert!((25.0..=30.0).contains(&lat), "got {lat} ns");
    }

    #[test]
    fn serialization_latency_matches_paper_example() {
        // Paper: "for 200 Gbps, the serialization delay is 10 ns" (for a
        // 256-byte flit: 2048 bits / 200 Gbps = 10.24 ns).
        let link = DwdmLinkBuilder::new()
            .channels(8)
            .channel_rate(Bandwidth::from_gbps(25.0))
            .flit_bytes(256)
            .build();
        assert!((link.serialization_latency().ns() - 10.24).abs() < 0.1);
    }

    #[test]
    fn power_scales_with_bandwidth_and_energy() {
        let link = DwdmLinkBuilder::new().build();
        // 1600 Gbps * 0.5 pJ/bit = 0.8 W.
        assert!((link.power_w() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn goodput_loses_less_than_point1_percent_to_fec() {
        let link = DwdmLinkBuilder::new().build();
        let loss = 1.0 - link.goodput() / link.bandwidth();
        assert!(loss < 0.001, "FEC bandwidth loss {loss} should be < 0.1%");
    }

    #[test]
    fn latency_breakdown_sums_to_total() {
        let link = DwdmLinkBuilder::new().build();
        let b = link.latency_breakdown();
        let total = b.oeo + b.propagation + b.serialization + b.fec;
        assert!((total.ns() - link.one_way_latency().ns()).abs() < 1e-9);
    }

    #[test]
    fn paper_latency_points_are_25_30_35() {
        let pts = paper_latency_points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].ns() - 25.0).abs() < 1e-9);
        assert!((pts[2].ns() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn builder_setters_apply() {
        let link = DwdmLinkBuilder::new()
            .channels(128)
            .channel_rate(Bandwidth::from_gbps(16.0))
            .energy_per_bit(Energy::from_pj(0.3))
            .oeo_latency(Latency::from_ns(10.0))
            .flit_bytes(64)
            .reach_m(1.0)
            .build();
        assert_eq!(link.channels, 128);
        assert!((link.bandwidth().gbps() - 2048.0).abs() < 1e-6);
        assert!((link.oeo_latency.ns() - 10.0).abs() < 1e-9);
        assert_eq!(link.flit_bytes, 64);
    }
}
