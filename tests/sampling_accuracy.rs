//! Golden-oracle accuracy suite for representative-scenario sampling.
//!
//! The oracle is exhaustive execution ([`SweepGrid::run`]), which this
//! repository pins byte-exactly across thread counts; the sampler's
//! contract is *statistical*: every reconstructed summary metric must land
//! within the error bound the [`SamplingStats`] block declares for it, on
//! the reference grid the `--bench` trajectory times (192 scenarios) and
//! on a replicate-inflated variant where sampling must also cut the
//! evaluated-scenario count by at least an order of magnitude.
//!
//! The reference-grid suites simulate hundreds of full-rack scenarios, so
//! — like `tests/golden_artifacts.rs` — they are release-only: debug
//! builds skip them (`--include-ignored` in the release CI step runs
//! them).

use photonic_disagg::core::report::SweepReport;
use photonic_disagg::core::sample::{reference_grid, SampleConfig};
use photonic_disagg::core::sweep::SweepGrid;
use photonic_disagg::core::EnergyMode;
use photonic_disagg::workloads::TrafficPattern;

/// Assert that every declared error bound holds: `|sampled - exact| <=
/// bound` for each summary metric the stats block covers.
fn assert_within_declared_bounds(sampled: &SweepReport, exact: &SweepReport) {
    let stats = sampled
        .sampling
        .as_ref()
        .expect("sampled reports carry SamplingStats");
    assert!(
        !stats.error_bounds.is_empty(),
        "non-degenerate sampling declares bounds"
    );
    for (metric, bound) in &stats.error_bounds {
        let estimate = sampled
            .summary_metric(metric)
            .unwrap_or_else(|| panic!("sampled summary lacks {metric}"));
        let oracle = exact
            .summary_metric(metric)
            .unwrap_or_else(|| panic!("exact summary lacks {metric}"));
        let error = (estimate - oracle).abs();
        assert!(
            error <= *bound,
            "{metric}: |{estimate} - {oracle}| = {error} exceeds declared bound {bound} \
             (dispersion {})",
            stats.mean_dispersion
        );
    }
    // The exact metrics are reconstructed exactly, not estimated.
    assert_eq!(
        sampled.summary_metric("scenarios"),
        exact.summary_metric("scenarios")
    );
    assert_eq!(
        sampled.summary_metric("fabrics_built"),
        exact.summary_metric("fabrics_built")
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: simulates the 192-scenario reference grid twice"
)]
fn reference_grid_reconstruction_is_within_declared_bounds() {
    let grid = reference_grid(); // 192 scenarios
    let exact = grid.run();
    let sampled = grid.run_sampled(&SampleConfig::with_clusters(24));
    let stats = sampled.sampling.as_ref().unwrap();
    assert!(!stats.exact);
    assert_eq!(stats.total, 192);
    assert!(stats.evaluated <= 24);
    assert_within_declared_bounds(&sampled, &exact);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: simulates the 64x replicate-inflated reference grid"
)]
fn replicate_inflated_grid_reduces_10x_within_bounds() {
    // 64x the reference replicate axis: 12288 scenarios, the regime the
    // sampler exists for (replicates of seed-insensitive patterns collapse
    // onto identical feature vectors).
    let grid = reference_grid().replicates(2048);
    let exact = grid.run();
    let sampled = grid.run_sampled(&SampleConfig::with_clusters(48));
    let stats = sampled.sampling.as_ref().unwrap();
    assert!(!stats.exact);
    assert_eq!(stats.total, 12288);
    assert!(
        stats.reduction() >= 10.0,
        "reduction {}x below the 10x acceptance floor",
        stats.reduction()
    );
    assert_within_declared_bounds(&sampled, &exact);
}

#[test]
fn cluster_budget_covering_the_grid_is_byte_identical_to_exact() {
    // K >= scenario count: the sampler must degenerate to the oracle,
    // byte for byte (SamplingStats is metadata, excluded from the JSON).
    let grid = SweepGrid::named("degenerate")
        .mcm_counts([16, 24])
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 200.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 300.0,
            },
        ])
        .replicates(4); // 16 scenarios
    let exact_json = grid.run().to_json();
    for clusters in [16, 17, 1000] {
        let sampled = grid.run_sampled(&SampleConfig::with_clusters(clusters));
        assert_eq!(
            sampled.to_json(),
            exact_json,
            "K={clusters} must degenerate to the exhaustive oracle"
        );
        assert!(sampled.sampling.unwrap().exact);
    }
}

#[test]
fn energy_metrics_are_reconstructed_within_bounds() {
    // A small energy-enabled grid keeps this suite running in debug too:
    // the energy summary block (total_energy_j, mean_power_w) must carry
    // bounds and satisfy them like the satisfaction/latency metrics.
    let grid = SweepGrid::named("energy-acc")
        .mcm_counts([24])
        .patterns([
            TrafficPattern::Uniform {
                flows_per_mcm: 4,
                demand_gbps: 150.0,
            },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 400.0,
            },
        ])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .replicates(16); // 128 scenarios
    let exact = grid.run();
    let sampled = grid.run_sampled(&SampleConfig::with_clusters(12));
    let stats = sampled.sampling.as_ref().unwrap();
    assert!(!stats.exact);
    assert!(stats.bound("total_energy_j").is_some());
    assert!(stats.bound("mean_power_w").is_some());
    assert_within_declared_bounds(&sampled, &exact);
}

#[test]
fn sampled_rows_carry_cluster_weights_that_cover_the_grid() {
    let grid = SweepGrid::named("weights")
        .mcm_counts([16])
        .patterns([TrafficPattern::Permutation { demand_gbps: 250.0 }])
        .replicates(64);
    let sampled = grid.run_sampled(&SampleConfig::with_clusters(8));
    let weight_sum: u64 = sampled
        .rows
        .iter()
        .map(|row| {
            row.params
                .iter()
                .find(|(k, _)| k == "cluster_weight")
                .expect("sampled rows carry cluster_weight")
                .1
                .parse::<u64>()
                .expect("cluster_weight is integral")
        })
        .sum();
    assert_eq!(weight_sum, 64, "weights partition the grid population");
}
