//! Cross-crate integration tests: build the paper's rack end to end and
//! check the headline qualitative results of the evaluation section hold
//! when all the pieces (photonic models, fabric, simulators, workloads,
//! provisioning analysis) are wired together the way the bench harness and
//! examples use them.

use photonic_disagg::core::cpu_experiments::{
    electronic_comparison, miss_rate_correlation, run_cpu_experiment_subset, summarize_by_suite,
    CpuExperimentConfig,
};
use photonic_disagg::core::gpu_experiments::{
    average_slowdown, gpu_results_to_json, run_gpu_experiment, GpuExperimentConfig,
};
use photonic_disagg::core::rack_analysis::RackAnalysis;
use photonic_disagg::core::rack_builder::{DisaggregatedRack, RackSummary};
use photonic_disagg::cpusim::CoreKind;
use photonic_disagg::fabric::flowsim::{Flow, FlowSimConfig, FlowSimulator};
use photonic_disagg::fabric::rackfabric::FabricKind;
use photonic_disagg::workloads::cpu::CpuSuite;

/// The analytical evaluation (Tables I-IV, Fig. 5, power, BER, bandwidth,
/// iso-performance) reproduces every headline claim.
#[test]
fn analytical_claims_reproduce() {
    let analysis = RackAnalysis::paper();
    for (claim, holds) in analysis.headline_claims() {
        assert!(holds, "claim failed: {claim}");
    }
}

/// Building both fabric variants of the rack gives the paper's structure:
/// 350 MCMs, 6.4 TB/s escape, ~35 ns photonic latency, ~5% power overhead.
#[test]
fn rack_builder_matches_paper_structure() {
    let awgr = DisaggregatedRack::paper(FabricKind::ParallelAwgrs).summary();
    assert_eq!(awgr.total_mcms, 350);
    assert_eq!(awgr.fabric.planes, 6);
    assert!(awgr.disaggregation_latency_ns <= 38.0);
    assert!(awgr.photonic_overhead_percent < 7.0);

    let wss = DisaggregatedRack::paper(FabricKind::WaveSelective).summary();
    assert_eq!(wss.fabric.planes, 11);
    assert!(wss.fabric.needs_scheduler);
    assert!(!awgr.fabric.needs_scheduler);
}

/// CPU + GPU experiments, run at reduced scale, preserve the paper's
/// qualitative results: LLC-resident benchmarks are barely affected,
/// LLC-thrashing ones slow down substantially, slowdown tracks LLC miss
/// rate, the photonic fabric beats the electronic one everywhere, and GPUs
/// tolerate the latency better than CPUs.
#[test]
fn simulation_claims_reproduce_at_reduced_scale() {
    let names = [
        "swaptions",
        "streamcluster",
        "nw",
        "canneal",
        "ep",
        "backprop",
        "srad",
    ];
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0, 85.0],
        core_kinds: vec![CoreKind::InOrder, CoreKind::OutOfOrder],
        ..CpuExperimentConfig::quick()
    };
    let results = run_cpu_experiment_subset(&cfg, |b| names.contains(&b.name.as_str()));
    // 3 PARSEC apps x 3 inputs + 1 NAS app x 3 classes + 3 Rodinia apps,
    // each on two core models.
    assert_eq!(results.len(), (3 * 3 + 3 + 3) * 2);

    // Latency-insensitive vs latency-sensitive classes.
    let slowdown = |name: &str, input: &str, kind: CoreKind| {
        results
            .iter()
            .find(|r| {
                r.benchmark.name == name
                    && r.benchmark.input.to_string() == input
                    && r.core_kind == kind
            })
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or_else(|| panic!("missing result for {name}/{input}"))
    };
    assert!(slowdown("swaptions", "large", CoreKind::InOrder) < 3.0);
    assert!(slowdown("ep", "large", CoreKind::InOrder) < 3.0);
    assert!(slowdown("streamcluster", "small", CoreKind::InOrder) < 3.0);
    assert!(slowdown("streamcluster", "large", CoreKind::InOrder) > 20.0);
    assert!(slowdown("nw", "default", CoreKind::InOrder) > 20.0);
    assert!(slowdown("canneal", "large", CoreKind::InOrder) > 15.0);

    // Slowdown correlates with LLC miss rate across the subset.
    let corr = miss_rate_correlation(&results, 35.0, |r| r.core_kind == CoreKind::InOrder);
    assert!(corr.pearson.unwrap() > 0.5);

    // Photonic (35 ns) beats electronic (85 ns) for every benchmark.
    for row in electronic_comparison(&results, false) {
        assert!(row.speedup_percent >= -1e-9, "{}", row.benchmark);
    }

    // Suite summaries exist for each represented suite.
    let summaries = summarize_by_suite(&results, 35.0);
    assert!(summaries.iter().any(|s| s.suite == CpuSuite::Parsec));
    assert!(summaries.iter().any(|s| s.suite == CpuSuite::Rodinia));

    // GPUs tolerate the latency better than in-order CPUs on the worst case.
    let gpu = run_gpu_experiment(&GpuExperimentConfig::default());
    let gpu_avg = average_slowdown(&gpu, 35.0);
    assert!(gpu_avg < 10.0, "GPU average slowdown {gpu_avg:.1}%");
    let gpu_nw = gpu
        .iter()
        .find(|r| r.name == "nw")
        .and_then(|r| r.slowdown_at(35.0))
        .unwrap();
    assert!(gpu_nw < slowdown("nw", "default", CoreKind::InOrder));
}

/// The AWGR fabric carries a rack-scale demand matrix: every MCM pair's
/// modest demand is satisfied on direct wavelengths, and a single elephant
/// flow is satisfied with indirect routing.
#[test]
fn fabric_serves_rack_scale_demand() {
    let rack = DisaggregatedRack::paper(FabricKind::ParallelAwgrs);
    let sim = FlowSimulator::new(&rack.fabric, FlowSimConfig::default());

    let modest: Vec<Flow> = (0..349).map(|i| Flow::new(i, i + 1, 100.0)).collect();
    let report = sim.run(&modest);
    assert!((report.satisfaction() - 1.0).abs() < 1e-9);
    assert_eq!(report.indirect_fraction, 0.0);

    let elephant = vec![Flow::new(0, 175, 6000.0)];
    let report = sim.run(&elephant);
    assert!(report.satisfaction() > 0.99);
    assert!(report.allocations[0].indirect_gbps > 0.0);
}

/// Serialization of experiment outputs (what the bench binaries write) is
/// stable and round-trips through the vendored JSON parser.
#[test]
fn results_serialize_round_trip() {
    let analysis = RackAnalysis::paper();
    let json = analysis.to_json();
    let value = serde::json::parse(&json).unwrap();
    let packings = value
        .get("table_iii")
        .and_then(|t| t.get("packings"))
        .and_then(|p| p.as_array())
        .unwrap();
    assert_eq!(packings.len(), 5);

    let gpu = run_gpu_experiment(&GpuExperimentConfig::default());
    let json = gpu_results_to_json(&gpu);
    assert!(json.contains("alexnet"));
    let parsed = serde::json::parse(&json).unwrap();
    assert_eq!(parsed.as_array().map(<[_]>::len), Some(gpu.len()));

    // The rack summary round-trips into an equal struct and re-emits
    // byte-identically.
    let summary = DisaggregatedRack::paper_awgr().summary();
    let json = summary.to_json();
    let parsed = RackSummary::from_json(&json).unwrap();
    assert_eq!(parsed, summary);
    assert_eq!(parsed.to_json(), json);
}
