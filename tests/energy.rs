//! Acceptance suite for the energy-accounting layer: the Section VI-C
//! totals reproduced from `EnergyStats`, the determinism contract extended
//! to the energy block, and the reconfiguration-energy tradeoff between
//! wavelength-reallocation policies.

use photonic_disagg::core::energy::{EnergyConfig, EnergyMode};
use photonic_disagg::core::sweep::SweepGrid;
use photonic_disagg::fabric::ReallocationPolicy;
use photonic_disagg::workloads::{DemandTimeline, TrafficPattern};

fn paper_point_grid() -> SweepGrid {
    SweepGrid::named("vi-c").energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
}

#[test]
fn energy_stats_reproduce_section_vi_c_totals() {
    // The paper's headline (Section VI-C): ~11 kW of always-on photonics,
    // ~5% of the rack's compute/memory power — here produced by the sweep
    // engine's energy layer at the default (paper design point) grid.
    let report = paper_point_grid().run();
    let always_on = report
        .energy
        .iter()
        .map(|(_, e)| e)
        .find(|e| e.mode == EnergyMode::AlwaysOn)
        .expect("always-on stats present");
    assert!(
        always_on.watts() > 9_500.0 && always_on.watts() < 11_500.0,
        "photonic power {} W should be ~10-11 kW",
        always_on.watts()
    );
    let pct = always_on.photonic_compute_ratio() * 100.0;
    assert!(pct > 4.0 && pct < 6.0, "overhead {pct}% should be ~5%");
    // Component consistency: total = transceiver + FEC + reconfig + idle.
    assert!(
        (always_on.total_joules()
            - always_on.transceiver_energy_j
            - always_on.fec_energy_j
            - always_on.reconfiguration_energy_j
            - always_on.idle_energy_j)
            .abs()
            < 1e-9
    );
}

#[test]
fn parallel_and_serial_energy_json_are_byte_identical() {
    let grids = [
        paper_point_grid(),
        SweepGrid::named("tl")
            .mcm_counts([16])
            .timelines([
                DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 5),
                DemandTimeline::hpc_mix(200.0, 2),
            ])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
                ReallocationPolicy::Hysteresis {
                    min_satisfaction: 0.9,
                },
            ])
            .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]),
    ];
    for grid in grids {
        let parallel = grid.run().to_json();
        let serial = grid.run_serial().to_json();
        assert_eq!(parallel, serial);
        // And stable across repeated runs.
        assert_eq!(parallel, grid.run().to_json());
        assert!(parallel.contains("\"energy\":["));
    }
}

#[test]
fn utilization_scaling_never_exceeds_always_on() {
    let report = SweepGrid::named("bound")
        .mcm_counts([16, 32])
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 100.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 2_000.0,
            },
        ])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .run();
    // Rows alternate always-on / util within each grid point.
    for pair in report.rows.chunks(2) {
        let always = pair[0].metric("energy_j").unwrap();
        let util = pair[1].metric("energy_j").unwrap();
        assert!(
            util <= always + 1e-6,
            "util {util} J exceeds always-on {always} J"
        );
        // Same demand on both rows of the pair.
        assert_eq!(
            pair[0].metric("offered_gbps"),
            pair[1].metric("offered_gbps")
        );
    }
}

#[test]
fn reconfiguration_energy_grades_the_policy_tradeoff() {
    // The shifting hot spot from PR 3: greedy re-steers every phase change
    // and pays for it; hysteresis pays less; static pays nothing. Under
    // utilization scaling the energy difference is visible per row.
    let report = SweepGrid::named("tradeoff")
        .mcm_counts([16])
        .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5)])
        .realloc_policies([
            ReallocationPolicy::Static,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9,
            },
            ReallocationPolicy::GreedyResteer,
        ])
        .energy_modes([EnergyMode::UtilizationScaled])
        .run();
    let reconf = |i: usize| report.rows[i].metric("reconfiguration_energy_j").unwrap();
    let events = |i: usize| report.rows[i].metric("reconfigurations").unwrap();
    let sat = |i: usize| report.rows[i].metric("satisfaction").unwrap();
    let (fixed, hyst, greedy) = (0, 1, 2);
    let unit = EnergyConfig::default().reconfiguration_energy_j;
    // Static never pays; greedy pays exactly once per phase change (three
    // boundaries in a four-phase schedule); hysteresis pays per event the
    // timeline recorded, however many its threshold triggered.
    assert_eq!(reconf(fixed), 0.0);
    assert!((reconf(greedy) - 3.0 * unit).abs() < 1e-9);
    assert!((reconf(hyst) - events(hyst) * unit).abs() < 1e-9);
    // The energy buys satisfaction: greedy serves at least as much demand.
    assert!(sat(greedy) >= sat(fixed) - 1e-9);
    // Reconfiguration energy in the row equals the block's figure.
    let (_, greedy_stats) = &report.energy[greedy];
    assert_eq!(reconf(greedy), greedy_stats.reconfiguration_energy_j);
}

#[test]
fn energy_config_knobs_scale_the_accounting() {
    let base = SweepGrid::named("k")
        .mcm_counts([16])
        .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 5)])
        .realloc_policies([ReallocationPolicy::GreedyResteer])
        .energy_modes([EnergyMode::UtilizationScaled]);
    let cheap = base
        .clone()
        .energy_config(EnergyConfig {
            reconfiguration_energy_j: 1.0,
            ..EnergyConfig::default()
        })
        .run();
    let costly = base
        .energy_config(EnergyConfig {
            reconfiguration_energy_j: 100.0,
            ..EnergyConfig::default()
        })
        .run();
    let cheap_reconf = cheap.rows[0].metric("reconfiguration_energy_j").unwrap();
    let costly_reconf = costly.rows[0].metric("reconfiguration_energy_j").unwrap();
    assert!(cheap_reconf > 0.0);
    assert!((costly_reconf - 100.0 * cheap_reconf).abs() < 1e-6);
    // Identical traffic, identical satisfaction — only the energy moved.
    assert_eq!(
        cheap.rows[0].metric("satisfaction"),
        costly.rows[0].metric("satisfaction")
    );
}
