//! Acceptance suite for cross-scenario computation reuse: dedup-planned
//! solving with byte-identical replay, plus the per-worker demand-matrix
//! memo.
//!
//! The contract under test: reuse is *exact*. A reuse-on run — the default
//! everywhere — must produce byte-identical `SweepReport` JSON to a
//! reuse-off run of the same grid at any thread count, because followers
//! replay their group leader's retained solver digest through their own
//! energy mode rather than re-deriving anything. The [`ReuseStats`] block
//! is observability only: excluded from report JSON and equality.

use std::fs;
use std::path::PathBuf;

use photonic_disagg::core::energy::EnergyMode;
use photonic_disagg::core::jobs::{JobRunner, JobSpec};
use photonic_disagg::core::sample::SampleConfig;
use photonic_disagg::core::sweep::{artifacts, StreamConfig, SweepGrid};
use photonic_disagg::fabric::flexgrid::SpectrumPolicy;
use photonic_disagg::fabric::timeline::ReallocationPolicy;
use photonic_disagg::workloads::timeline::DemandTimeline;
use photonic_disagg::workloads::TrafficPattern;
use proptest::prelude::*;

/// A grid whose energy axis gives every physical solve two byte-identical
/// variants: the dedup planner must find one group per grid point.
fn energy_axis_grid() -> SweepGrid {
    SweepGrid::named("reuse-energy")
        .mcm_counts([16, 24])
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 200.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 300.0,
            },
        ])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .replicates(3)
}

/// A grid covering all three load kinds (pattern, wavelength timeline,
/// flex grid) so replay exercises every `RetainedReport` digest shape.
fn all_load_kinds_grid() -> SweepGrid {
    SweepGrid::named("reuse-kinds")
        .mcm_counts([16])
        .patterns([TrafficPattern::Permutation { demand_gbps: 200.0 }])
        .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5)])
        .realloc_policies([
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
        ])
        .spectrum_policies([SpectrumPolicy::default()])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .direct_latencies_ns([25.0, 35.0])
        .replicates(2)
}

fn run_with_reuse(grid: &SweepGrid, reuse: bool) -> photonic_disagg::core::SweepReport {
    grid.run_streaming(&StreamConfig {
        reuse,
        ..StreamConfig::default()
    })
}

#[test]
fn reuse_stats_partition_the_batch_and_find_energy_groups() {
    let grid = energy_axis_grid();
    let report = grid.run();
    let stats = report.reuse.expect("default run attaches ReuseStats");
    // Leaders + followers must partition the executed scenarios exactly.
    assert_eq!(stats.scenarios(), grid.scenario_count());
    assert_eq!(
        stats.leaders_solved + stats.followers_replayed,
        grid.scenario_count()
    );
    // Every grid point has two energy-mode variants of one physical solve:
    // half the scenarios are followers, one group per grid point.
    assert_eq!(stats.leaders_solved, grid.scenario_count() / 2);
    assert_eq!(stats.followers_replayed, grid.scenario_count() / 2);
    assert_eq!(stats.groups, grid.scenario_count() / 2);
    assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn reuse_stats_are_excluded_from_json_and_equality() {
    let grid = energy_axis_grid();
    let on = run_with_reuse(&grid, true);
    let off = run_with_reuse(&grid, false);
    assert!(on.reuse.is_some());
    // --no-reuse attaches no stats block at all.
    assert!(off.reuse.is_none());
    // JSON carries no trace of the stats: reports stay byte-compatible
    // with every earlier consumer, whatever the knob.
    let json = on.to_json();
    for key in ["leaders_solved", "followers_replayed", "matrices_reused"] {
        assert!(!json.contains(key), "{key} leaked into report JSON");
    }
    // PartialEq ignores the block too.
    assert_eq!(on, off);
}

#[test]
fn reuse_is_byte_exact_across_load_kinds_and_thread_counts() {
    let grid = all_load_kinds_grid();
    let reference = rayon::with_max_threads(1, || run_with_reuse(&grid, false)).to_json();
    for threads in [1, 2, 8] {
        let on = rayon::with_max_threads(threads, || run_with_reuse(&grid, true));
        assert_eq!(
            on.to_json(),
            reference,
            "reuse-on diverged at {threads} threads"
        );
        let stats = on.reuse.expect("stats attached");
        assert_eq!(stats.scenarios(), grid.scenario_count());
        assert!(stats.followers_replayed > 0, "energy axis must dedup");
    }
}

#[test]
fn demand_matrix_memo_fires_for_seed_insensitive_replicates() {
    // AllToAll ignores the seed, so all replicates of one rack size share
    // one demand expansion; serial execution makes the count deterministic.
    let grid = SweepGrid::named("reuse-memo")
        .mcm_counts([16])
        .patterns([TrafficPattern::AllToAll { demand_gbps: 8.0 }])
        .replicates(4);
    let report = rayon::with_max_threads(1, || grid.run());
    let stats = report.reuse.expect("stats attached");
    // No energy axis: nothing dedups, but 3 of the 4 replicates reuse the
    // leader replicate's memoized flow list.
    assert_eq!(stats.followers_replayed, 0);
    assert_eq!(stats.matrices_reused, 3);
}

#[test]
fn golden_energy_smoke_is_unchanged_with_reuse_on_by_default() {
    // The checked-in fixture predates computation reuse; the artifact path
    // runs with reuse on (the default), so matching it byte for byte pins
    // the replay exactness claim against a historical oracle.
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/energy_smoke.json");
    let expected = fs::read_to_string(&fixture).expect("golden fixture present");
    let artifact = artifacts::energy_smoke();
    assert_eq!(artifact.report.to_json(), expected.trim_end());
    let stats = artifact.report.reuse.expect("artifact ran with reuse on");
    assert!(stats.followers_replayed > 0, "energy-axis grid must dedup");
}

#[test]
fn job_spec_reuse_field_parses_defaults_and_round_trips() {
    // Old job files (no `reuse` key) keep their meaning: reuse on.
    let defaulted = JobSpec::from_json(r#"{"grid":{"mcm_counts":[16]}}"#).unwrap();
    assert!(defaulted.reuse);
    let off = JobSpec::from_json(r#"{"grid":{"mcm_counts":[16]},"reuse":false}"#).unwrap();
    assert!(!off.reuse);
    assert!(JobSpec::from_json(r#"{"grid":{},"reuse":1}"#).is_err());
    // Round trip through to_json preserves the knob.
    assert_eq!(JobSpec::from_json(&off.to_json()).unwrap(), off);
    assert_eq!(JobSpec::from_json(&defaulted.to_json()).unwrap(), defaulted);
    // Reuse is byte-exact, so it must NOT split the shard cache: both
    // spellings share one cache key.
    assert_eq!(off.cache_key(), defaulted.cache_key());
}

#[test]
fn jobs_report_reuse_counters_and_stay_byte_identical() {
    let dir = std::env::temp_dir().join(format!(
        "pd-reuse-jobs-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let runner = JobRunner::new(&dir);

    let mut spec = JobSpec::new(energy_axis_grid());
    spec.rows_per_shard = 5;
    let outcome = runner.run(&spec).expect("job runs");
    let stats = outcome.reuse.expect("reuse-on job attaches counters");
    assert_eq!(stats.scenarios(), outcome.scenarios_executed);
    assert!(stats.followers_replayed > 0);
    assert_eq!(outcome.report.reuse, outcome.reuse);

    // A fully cached rerun solved nothing: counters are all zero.
    let cached = runner.run(&spec).expect("cached rerun");
    assert_eq!(cached.scenarios_executed, 0);
    assert_eq!(cached.reuse.expect("still attached").scenarios(), 0);
    assert_eq!(cached.report.to_json(), outcome.report.to_json());

    // A reuse-off spec shares the cache (same key) and the same bytes, and
    // attaches no counters.
    let mut off = spec.clone();
    off.reuse = false;
    let fresh_dir = dir.join("fresh");
    let off_outcome = JobRunner::new(&fresh_dir).run(&off).expect("reuse-off job");
    assert!(off_outcome.reuse.is_none());
    assert_eq!(off_outcome.report.to_json(), outcome.report.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sampled_jobs_and_run_sampled_carry_reuse_stats() {
    let grid = energy_axis_grid().replicates(16);
    let config = SampleConfig::with_clusters(6);
    let sampled = grid.run_sampled(&config);
    let stats = sampled.reuse.expect("run_sampled attaches ReuseStats");
    assert_eq!(
        stats.scenarios(),
        sampled.sampling.as_ref().unwrap().evaluated
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reuse exactness over randomized energy/latency/replicate-heavy
    /// grids: reuse-on and reuse-off `SweepReport` JSON is byte-identical
    /// at 1, 2, and 8 threads, whatever dedup opportunities the grid
    /// happens to contain.
    #[test]
    fn reuse_on_off_reports_are_byte_identical(
        seed in 0u64..500,
        mcms in 8u32..24,
        replicates in 1u32..6,
        latency_b in 20.0f64..60.0,
        demand in 50.0f64..2_000.0,
        both_modes in 0u8..2,
    ) {
        let modes = if both_modes == 1 {
            vec![EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]
        } else {
            vec![EnergyMode::UtilizationScaled]
        };
        let mut grid = SweepGrid::named("prop-reuse")
            .mcm_counts([mcms])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: demand },
                TrafficPattern::AllToAll { demand_gbps: demand / 25.0 },
            ])
            .direct_latencies_ns([35.0, latency_b])
            .replicates(replicates);
        grid.energy_modes = modes;
        grid.base_seed = seed;
        let off = rayon::with_max_threads(1, || run_with_reuse(&grid, false)).to_json();
        for threads in [1usize, 2, 8] {
            let on = rayon::with_max_threads(threads, || run_with_reuse(&grid, true));
            prop_assert_eq!(on.to_json(), off.clone());
        }
    }
}
