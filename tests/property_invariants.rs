//! Property-based integration tests on cross-crate invariants: the AWGR
//! all-to-all property at arbitrary sizes, conservation of wavelength
//! capacity in the flow simulator, monotonicity of the CPU and GPU timing
//! models in the added latency, monotonicity and boundedness of
//! utilization-scaled energy in the offered load, MCM packing preserving
//! escape bandwidth, and the flex-grid spectrum allocator's structural
//! invariants (no double-booked slots, contiguous guarded blocks, monotone
//! carried bandwidth, release/re-admit round trips).

use std::collections::HashMap;

use photonic_disagg::core::energy::EnergyMode;
use photonic_disagg::core::sample::{ClusterPlan, SampleConfig};
use photonic_disagg::core::sweep::SweepGrid;
use photonic_disagg::cpusim::{CoreKind, CpuConfig, Simulator};
use photonic_disagg::fabric::awgr::Awgr;
use photonic_disagg::fabric::flexgrid::{
    AdmissionPolicy, FlexGridConfig, Lightpath, SpectrumAllocator, SpectrumPolicy,
};
use photonic_disagg::fabric::flowsim::{Flow, FlowSimConfig, FlowSimulator};
use photonic_disagg::fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use photonic_disagg::fabric::timeline::{ReallocationPolicy, TimelineConfig, TimelineSimulator};
use photonic_disagg::gpusim::{GpuConfig, GpuTimingModel};
use photonic_disagg::photonics::units::Bandwidth;
use photonic_disagg::rack::chips::{ChipKind, ChipSpec};
use photonic_disagg::rack::mcm::McmPacking;
use photonic_disagg::workloads::gpu::gpu_applications;
use photonic_disagg::workloads::patterns::{AccessPattern, PatternParams};
use photonic_disagg::workloads::TrafficPattern;
use proptest::prelude::*;

/// The ordered rack links a lightpath occupies.
fn lightpath_links(lp: &Lightpath) -> Vec<(u32, u32)> {
    match lp.via {
        Some(m) => vec![(lp.src, m), (m, lp.dst)],
        None => vec![(lp.src, lp.dst)],
    }
}

/// Structural soundness of a spectrum board: every active lightpath holds an
/// in-bounds contiguous block with its trailing guardband, no (link, slot)
/// is booked twice, the occupancy bitmap is exactly the union of the active
/// blocks, and data regions sharing a link are guardband-separated.
fn assert_spectrum_board_sound(alloc: &SpectrumAllocator, guard_slots: u32) {
    let slots = alloc.slots_per_link();
    let mut booked: HashMap<(u32, u32), Vec<Option<usize>>> = HashMap::new();
    for (i, lp) in alloc.active_lightpaths().iter().enumerate() {
        assert_eq!(lp.slot_count, lp.data_slots + guard_slots);
        assert!(lp.data_slots >= 1);
        assert!(lp.first_slot + lp.slot_count <= slots);
        for link in lightpath_links(lp) {
            let board = booked
                .entry(link)
                .or_insert_with(|| vec![None; slots as usize]);
            for s in lp.first_slot..lp.first_slot + lp.slot_count {
                assert!(
                    board[s as usize].is_none(),
                    "slot {s} on link {link:?} booked by lightpaths {:?} and {i}",
                    board[s as usize]
                );
                board[s as usize] = Some(i);
            }
        }
    }
    let active = alloc.active_lightpaths();
    for (link, board) in &booked {
        let expect: Vec<u32> = (0..slots)
            .filter(|&s| board[s as usize].is_some())
            .collect();
        assert_eq!(alloc.occupied_slots(link.0, link.1), expect);
        // Trailing guardbands keep the data regions of distinct lightpaths
        // at least `guard_slots` apart on every shared link.
        let mut data: Vec<(u32, u32)> = active
            .iter()
            .filter(|lp| lightpath_links(lp).contains(link))
            .map(|lp| (lp.first_slot, lp.first_slot + lp.data_slots))
            .collect();
        data.sort_unstable();
        for pair in data.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1 + guard_slots,
                "data blocks {pair:?} closer than the {guard_slots}-slot guard"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every AWGR size yields a perfect all-to-all (each input reaches each
    /// output on exactly one wavelength).
    #[test]
    fn awgr_all_to_all_for_any_size(ports in 1u32..200) {
        prop_assert!(Awgr::new(ports).verify_all_to_all());
    }

    /// Any rack size keeps at least the five-wavelength AWGR guarantee and
    /// at least one shared switch for the wave-selective fabric.
    #[test]
    fn fabric_connectivity_holds_for_any_rack_size(mcms in 8u32..200) {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        let awgr = RackFabric::new(cfg).report();
        prop_assert!(awgr.min_direct_wavelengths >= 5);

        let mut cfg = RackFabricConfig::paper_rack(FabricKind::WaveSelective);
        cfg.mcm_count = mcms;
        let wss = RackFabric::new(cfg).report();
        prop_assert!(wss.min_direct_wavelengths >= 256);
    }

    /// The flow simulator never reports more satisfied bandwidth than was
    /// offered, and per-flow allocations never exceed their demand.
    #[test]
    fn flow_simulator_conserves_demand(
        seed in 0u64..1_000,
        n_flows in 1usize..40,
        demand in 1.0f64..4_000.0,
    ) {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 32;
        let fabric = RackFabric::new(cfg);
        let flows: Vec<Flow> = (0..n_flows)
            .map(|i| {
                let src = (seed as u32 + i as u32) % 32;
                let dst = (seed as u32 + 3 * i as u32 + 1) % 32;
                Flow::new(src, dst, demand)
            })
            .collect();
        let report = FlowSimulator::new(&fabric, FlowSimConfig { seed, ..Default::default() }).run(&flows);
        prop_assert!(report.satisfied_gbps <= report.offered_gbps + 1e-6);
        prop_assert!(report.satisfaction() >= 0.0 && report.satisfaction() <= 1.0 + 1e-9);
        for a in &report.allocations {
            prop_assert!(a.satisfied_gbps() <= a.flow.demand_gbps + 1e-6);
            prop_assert!(a.satisfaction() >= 0.0 && a.satisfaction() <= 1.0);
        }
    }

    /// Per-fiber (aggregate wavelength) capacity conservation: the fabric
    /// can never deliver more inter-MCM bandwidth than the sum of its
    /// direct per-pair wavelength capacity, whatever the demand — indirect
    /// routing moves capacity, it cannot mint it.
    #[test]
    fn flow_simulator_conserves_fabric_capacity(
        seed in 0u64..1_000,
        mcms in 4u32..24,
        demand in 100.0f64..20_000.0,
    ) {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        let fabric = RackFabric::new(cfg);
        let flows: Vec<Flow> = (0..mcms)
            .flat_map(|a| (0..mcms).filter(move |&b| b != a).map(move |b| Flow::new(a, b, demand)))
            .collect();
        let report = FlowSimulator::new(&fabric, FlowSimConfig { seed, ..Default::default() }).run(&flows);
        let mut aggregate = 0.0;
        for a in 0..mcms {
            for b in 0..mcms {
                if a != b {
                    aggregate += fabric.direct_bandwidth(a, b).gbps();
                }
            }
        }
        prop_assert!(
            report.satisfied_gbps <= aggregate + 1e-6,
            "satisfied {} exceeds aggregate capacity {}",
            report.satisfied_gbps,
            aggregate
        );
    }

    /// Timeline invariants under every policy: per-epoch satisfied never
    /// exceeds offered, satisfactions stay in [0, 1], the aggregate equals
    /// the offered-weighted mean of the per-epoch results, and the
    /// reconfiguration count is bounded by the epochs after the first.
    #[test]
    fn timeline_simulator_invariants(
        seed in 0u64..500,
        policy_idx in 0usize..3,
        n_epochs in 1usize..6,
        demand in 50.0f64..3_000.0,
    ) {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 16;
        let fabric = RackFabric::new(cfg);
        let policy = [
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
            ReallocationPolicy::Hysteresis { min_satisfaction: 0.85 },
        ][policy_idx];
        // A hot spot that hops around the rack pseudo-randomly per epoch.
        let epochs: Vec<Vec<Flow>> = (0..n_epochs)
            .map(|e| {
                let hot = ((seed + 7 * e as u64) % 16) as u32;
                (0..16).filter(|&s| s != hot).map(|s| Flow::new(s, hot, demand)).collect()
            })
            .collect();
        let report = TimelineSimulator::new(
            &fabric,
            TimelineConfig { policy, flow: FlowSimConfig { seed, ..Default::default() } },
        )
        .run(&epochs);

        let mut offered = 0.0;
        let mut satisfied = 0.0;
        for e in &report.epochs {
            prop_assert!(e.satisfied_gbps <= e.offered_gbps + 1e-6);
            prop_assert!(e.satisfaction() >= 0.0 && e.satisfaction() <= 1.0 + 1e-9);
            offered += e.offered_gbps;
            satisfied += e.satisfied_gbps;
        }
        prop_assert!((report.offered_gbps - offered).abs() < 1e-6);
        prop_assert!((report.satisfied_gbps - satisfied).abs() < 1e-6);
        // Aggregate satisfaction == offered-weighted mean of epoch results.
        if offered > 0.0 {
            let weighted = report
                .epochs
                .iter()
                .map(|e| e.satisfaction() * e.offered_gbps)
                .sum::<f64>()
                / offered;
            prop_assert!((report.satisfaction() - weighted).abs() < 1e-9);
        }
        prop_assert!(report.reconfigurations <= report.epochs.len().saturating_sub(1));
        if policy == ReallocationPolicy::Static {
            prop_assert!(report.reconfigurations == 0);
        }
    }

    /// CPU execution time is monotonically non-decreasing in the added
    /// LLC-to-memory latency, for every access pattern and core model.
    #[test]
    fn cpu_cycles_monotonic_in_latency(
        pattern_idx in 0usize..AccessPattern::ALL.len(),
        ws_kib in 64u64..4096,
        seed in 0u64..100,
    ) {
        let pattern = AccessPattern::ALL[pattern_idx];
        let params = PatternParams::new(ws_kib * 1024, 5_000).seed(seed);
        let trace = pattern.generate(&params);
        for kind in CoreKind::ALL {
            let mut prev = 0u64;
            for extra in [0.0, 35.0, 85.0] {
                let result = Simulator::new(
                    CpuConfig::baseline(kind).with_extra_latency_ns(extra),
                )
                .with_warmup(true)
                .run(&trace);
                prop_assert!(result.cycles >= prev);
                prev = result.cycles;
            }
        }
    }

    /// GPU predicted cycles are monotonically non-decreasing in the added
    /// HBM latency for every registered application.
    #[test]
    fn gpu_cycles_monotonic_in_latency(app_idx in 0usize..24, extra in 0.0f64..200.0) {
        let apps = gpu_applications();
        let app = &apps[app_idx];
        let base = GpuTimingModel::new(GpuConfig::a100()).run(app);
        let slowed =
            GpuTimingModel::new(GpuConfig::a100().with_extra_hbm_latency_ns(extra)).run(app);
        prop_assert!(slowed.total_cycles >= base.total_cycles - 1e-9);
    }

    /// Under utilization scaling, per-scenario energy is monotone in the
    /// offered load: scaling a below-saturation permutation up carries
    /// strictly more bits through the fabric and therefore consumes strictly
    /// more energy — and never more than the always-on assumption.
    #[test]
    fn energy_monotone_in_offered_load_under_utilization_scaling(
        demand in 1.0f64..60.0,
        scale in 1.05f64..1.9,
        seed in 0u64..500,
    ) {
        // Permutation flows below the >=125 Gbps direct capacity are fully
        // satisfied, so carried bits — and with them utilization-scaled
        // energy — grow proportionally with the offered demand.
        let run = |d: f64| {
            SweepGrid::named("prop-energy")
                .mcm_counts([16])
                .patterns([TrafficPattern::Permutation { demand_gbps: d }])
                .energy_modes([EnergyMode::UtilizationScaled, EnergyMode::AlwaysOn])
                .base_seed(seed)
                .run()
        };
        let lo = run(demand);
        let hi = run(demand * scale);
        let util_j = |r: &photonic_disagg::core::SweepReport| r.rows[0].metric("energy_j").unwrap();
        let always_j =
            |r: &photonic_disagg::core::SweepReport| r.rows[1].metric("energy_j").unwrap();
        prop_assert!(
            util_j(&hi) > util_j(&lo),
            "energy must rise with offered load: {} J at {demand} Gbps vs {} J at {} Gbps",
            util_j(&lo),
            util_j(&hi),
            demand * scale
        );
        prop_assert!(util_j(&lo) <= always_j(&lo) + 1e-6);
        prop_assert!(util_j(&hi) <= always_j(&hi) + 1e-6);
    }

    /// At any load — including far past saturation — utilization-scaled
    /// energy stays bounded by the always-on budget: the fabric cannot carry
    /// more wire bits than its link capacity.
    #[test]
    fn utilization_energy_bounded_by_always_on_at_any_load(
        demand in 10.0f64..20_000.0,
        hot in 1u32..4,
        seed in 0u64..500,
    ) {
        let report = SweepGrid::named("prop-bound")
            .mcm_counts([12])
            .patterns([TrafficPattern::HotSpot { hot_mcms: hot, demand_gbps: demand }])
            .energy_modes([EnergyMode::UtilizationScaled, EnergyMode::AlwaysOn])
            .base_seed(seed)
            .run();
        let util = report.rows[0].metric("energy_j").unwrap();
        let always = report.rows[1].metric("energy_j").unwrap();
        prop_assert!(util <= always + 1e-6, "util {util} J > always-on {always} J");
        prop_assert!(util.is_finite() && util >= 0.0);
    }

    /// Pseudo-random admit sequences keep the spectrum board structurally
    /// sound under every admission rule, and the carried bandwidth never
    /// decreases across admissions (an admit either books a lightpath for
    /// the full sanitized demand or changes nothing).
    #[test]
    fn flexgrid_admissions_keep_the_board_sound(
        seed in 0u64..1_000,
        n_flows in 1usize..40,
        demand in 25.0f64..2_500.0,
        admission_idx in 0usize..3,
    ) {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 12;
        let fabric = RackFabric::new(cfg);
        let config = FlexGridConfig {
            policy: SpectrumPolicy {
                admission: [
                    AdmissionPolicy::FirstFit,
                    AdmissionPolicy::BestFit,
                    AdmissionPolicy::ExactFit,
                ][admission_idx],
                ..SpectrumPolicy::default()
            },
            ..FlexGridConfig::default()
        };
        let mut alloc = SpectrumAllocator::new(&fabric, config);
        let mut carried = 0.0;
        for i in 0..n_flows {
            let src = ((seed + 5 * i as u64) % 12) as u32;
            let dst = ((seed + 7 * i as u64 + 1) % 12) as u32;
            let granted = alloc.admit(Flow::new(src, dst, demand));
            prop_assert!(alloc.carried_gbps() >= carried);
            if let Some(lp) = granted {
                prop_assert_eq!(lp.demand_gbps, demand);
                prop_assert!(alloc.carried_gbps() > carried);
            } else {
                prop_assert_eq!(alloc.carried_gbps(), carried);
            }
            carried = alloc.carried_gbps();
            assert_spectrum_board_sound(&alloc, config.guard_slots);
        }
    }

    /// Admitting a flow and releasing the booked lightpath restores the
    /// observable board state exactly, and re-admitting the same flow books
    /// the identical lightpath; a blocked admit leaves no trace at all.
    #[test]
    fn flexgrid_release_then_readmit_is_identity(
        seed in 0u64..1_000,
        n_flows in 0usize..25,
        demand in 25.0f64..1_500.0,
        probe_demand in 25.0f64..1_500.0,
        admission_idx in 0usize..3,
    ) {
        let mcms = 12u32;
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        let fabric = RackFabric::new(cfg);
        let config = FlexGridConfig {
            policy: SpectrumPolicy {
                admission: [
                    AdmissionPolicy::FirstFit,
                    AdmissionPolicy::BestFit,
                    AdmissionPolicy::ExactFit,
                ][admission_idx],
                ..SpectrumPolicy::default()
            },
            ..FlexGridConfig::default()
        };
        let mut alloc = SpectrumAllocator::new(&fabric, config);
        for i in 0..n_flows {
            let src = ((seed + 11 * i as u64) % mcms as u64) as u32;
            let dst = ((seed + 3 * i as u64 + 2) % mcms as u64) as u32;
            alloc.admit(Flow::new(src, dst, demand));
        }
        let snapshot = |a: &SpectrumAllocator| {
            let mut occ = Vec::new();
            for s in 0..mcms {
                for d in 0..mcms {
                    occ.push(a.occupied_slots(s, d));
                }
            }
            (occ, a.active_lightpaths().to_vec(), a.carried_gbps())
        };
        let before = snapshot(&alloc);
        let src = (seed % mcms as u64) as u32;
        let dst = ((seed + 1) % mcms as u64) as u32;
        match alloc.admit(Flow::new(src, dst, probe_demand)) {
            Some(lp) => {
                prop_assert!(alloc.release(&lp));
                prop_assert_eq!(snapshot(&alloc), before.clone());
                // The same flow against the same board books the same path.
                let again = alloc.admit(Flow::new(src, dst, probe_demand));
                prop_assert_eq!(again, Some(lp));
            }
            None => prop_assert_eq!(snapshot(&alloc), before.clone()),
        }
    }

    /// MCM packing always preserves per-chip escape bandwidth, for any chip
    /// type and any MCM escape bandwidth at least as large as one chip's.
    #[test]
    fn mcm_packing_preserves_escape_bandwidth(
        kind_idx in 0usize..ChipKind::ALL.len(),
        escape_tbs in 2.0f64..20.0,
        chips in 1u32..4096,
    ) {
        let spec = ChipSpec::baseline(ChipKind::ALL[kind_idx]);
        let packing = McmPacking::pack(&spec, chips, Bandwidth::from_tbytes_per_s(escape_tbs));
        prop_assert!(packing.preserves_escape_bandwidth(&spec));
        prop_assert!(packing.chips_per_mcm >= 1);
        prop_assert!(packing.mcms_per_rack as u64 * packing.chips_per_mcm as u64 >= chips as u64);
    }

    /// A sampling cluster plan partitions the grid: cluster weights sum to
    /// the scenario count, every scenario maps to exactly one live cluster,
    /// and each representative belongs to the cluster it represents — for
    /// any grid shape, base seed, and cluster budget.
    #[test]
    fn sampling_plan_partitions_any_grid(
        seed in 0u64..1_000,
        mcm_a in 8u32..20,
        mcm_b in 8u32..20,
        replicates in 1u32..12,
        clusters in 1usize..24,
    ) {
        let mut grid = SweepGrid::named("prop-plan")
            .mcm_counts([mcm_a, mcm_b])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: 200.0 },
                TrafficPattern::HotSpot { hot_mcms: 2, demand_gbps: 300.0 },
            ])
            .replicates(replicates);
        grid.base_seed = seed;
        let n = grid.scenario_count();
        let plan = ClusterPlan::build(&grid, &SampleConfig::with_clusters(clusters));
        prop_assert_eq!(plan.total, n);
        if plan.exact {
            prop_assert!(plan.representatives.is_empty());
            prop_assert!(plan.assignments.is_empty());
        } else {
            let weight_sum: usize = plan.representatives.iter().map(|r| r.weight).sum();
            prop_assert_eq!(weight_sum, n);
            prop_assert_eq!(plan.assignments.len(), n);
            let mut populations = vec![0usize; plan.representatives.len()];
            for &ordinal in &plan.assignments {
                prop_assert!((ordinal as usize) < plan.representatives.len());
                populations[ordinal as usize] += 1;
            }
            for (ordinal, rep) in plan.representatives.iter().enumerate() {
                prop_assert_eq!(populations[ordinal], rep.weight);
                prop_assert_eq!(plan.assignments[rep.index] as usize, ordinal);
                prop_assert!(rep.index < n);
            }
        }
    }

    /// The sampled report is a pure function of the grid *contents*: naming
    /// the same axes in a different declaration order (which permutes the
    /// grid-expansion order) reconstructs a byte-identical report, because
    /// the plan clusters scenarios in canonical (feature-sorted) order.
    /// Degenerate plans fall back to the exhaustive oracle, whose row
    /// order intentionally follows the declared expansion order, so the
    /// grid here stays large enough (>= 2 replicates) to actually sample.
    #[test]
    fn sampled_report_is_invariant_under_axis_reordering(
        seed in 0u64..200,
        replicates in 2u32..5,
    ) {
        let patterns = [
            TrafficPattern::Permutation { demand_gbps: 200.0 },
            TrafficPattern::HotSpot { hot_mcms: 2, demand_gbps: 300.0 },
        ];
        let mut forward = SweepGrid::named("prop-order")
            .mcm_counts([8, 12])
            .patterns(patterns)
            .replicates(replicates);
        forward.base_seed = seed;
        let mut reversed = SweepGrid::named("prop-order")
            .mcm_counts([12, 8])
            .patterns([patterns[1], patterns[0]])
            .replicates(replicates);
        reversed.base_seed = seed;
        let config = SampleConfig::with_clusters(3);
        let forward_report = forward.run_sampled(&config);
        prop_assert!(
            !forward_report.sampling.as_ref().expect("stats attached").exact
        );
        prop_assert_eq!(
            forward_report.to_json(),
            reversed.run_sampled(&config).to_json()
        );
    }

    /// Sampling is deterministic in the executing thread count: the
    /// clustering is sequential and representative execution preserves
    /// order, so 1, 2, and 8 threads produce byte-identical reports.
    #[test]
    fn sampled_report_is_identical_across_thread_counts(
        seed in 0u64..200,
        clusters in 2usize..6,
    ) {
        let mut grid = SweepGrid::named("prop-threads")
            .mcm_counts([8, 12])
            .patterns([TrafficPattern::Permutation { demand_gbps: 250.0 }])
            .replicates(8);
        grid.base_seed = seed;
        let config = SampleConfig::with_clusters(clusters);
        let one = rayon::with_max_threads(1, || grid.run_sampled(&config));
        let two = rayon::with_max_threads(2, || grid.run_sampled(&config));
        let eight = rayon::with_max_threads(8, || grid.run_sampled(&config));
        prop_assert_eq!(one.to_json(), two.to_json());
        prop_assert_eq!(two.to_json(), eight.to_json());
    }
}
