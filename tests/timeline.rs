//! Integration tests for the temporal layer: `DemandTimeline` schedules
//! driven through the `SweepGrid` timeline axis, the reallocation-policy
//! comparison the paper's bandwidth-steering argument predicts, and the
//! engine's determinism contract extended to temporal sweeps.

use photonic_disagg::core::sweep::SweepGrid;
use photonic_disagg::fabric::{FabricKind, ReallocationPolicy};
use photonic_disagg::workloads::{DemandTimeline, TrafficPattern};

/// Three phase schedules x two policies: the acceptance grid.
fn acceptance_grid() -> SweepGrid {
    SweepGrid::named("timeline-acceptance")
        .mcm_counts([16])
        .timelines([
            DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5),
            DemandTimeline::hpc_mix(300.0, 2),
            DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 300.0 }, 4),
        ])
        .realloc_policies([
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
        ])
}

#[test]
fn timeline_sweep_covers_policies_times_schedules() {
    let report = acceptance_grid().run();
    assert_eq!(report.rows.len(), 3 * 2);
    for row in &report.rows {
        let sat = row.metric("satisfaction").unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&sat), "satisfaction {sat}");
        assert!(row.metric("epochs").unwrap() >= 4.0);
        assert!(!row.metric("mean_latency_ns").unwrap().is_nan());
    }
}

#[test]
fn timeline_sweep_json_is_byte_identical_across_runs() {
    let grid = acceptance_grid();
    let a = grid.run().to_json();
    let b = grid.run().to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"scenarios\":6"));
    assert!(a.contains("\"policy\":\"greedy\""));
}

#[test]
fn timeline_parallel_equals_serial() {
    let grid = acceptance_grid();
    assert_eq!(grid.run(), grid.run_serial());
}

#[test]
fn greedy_resteer_dominates_static_on_a_shifting_hotspot() {
    // The acceptance claim: on a timeline whose hot spot moves, per-epoch
    // re-steering achieves at least the static assignment's aggregate
    // satisfaction (strictly more here, since the static assignment goes
    // stale after the first phase).
    let report = acceptance_grid().run();
    let find = |timeline: &str, policy: &str| {
        report
            .rows
            .iter()
            .find(|r| {
                r.params
                    .iter()
                    .any(|(k, v)| k == "timeline" && v == timeline)
                    && r.params.iter().any(|(k, v)| k == "policy" && v == policy)
            })
            .unwrap_or_else(|| panic!("missing row {timeline}/{policy}"))
    };
    let static_sat = find("shifthot2", "static").metric("satisfaction").unwrap();
    let greedy_sat = find("shifthot2", "greedy").metric("satisfaction").unwrap();
    assert!(
        greedy_sat >= static_sat,
        "greedy {greedy_sat} must be >= static {static_sat}"
    );
    assert!(
        greedy_sat > static_sat + 0.1,
        "shifting hotspot should leave a wide gap (greedy {greedy_sat}, static {static_sat})"
    );
    // Both policies see the identical offered demand (shared seed).
    assert_eq!(
        find("shifthot2", "static").metric("offered_gbps"),
        find("shifthot2", "greedy").metric("offered_gbps")
    );
    // Greedy pays for its advantage in reconfigurations; static never moves.
    assert_eq!(
        find("shifthot2", "static")
            .metric("reconfigurations")
            .unwrap(),
        0.0
    );
    assert!(
        find("shifthot2", "greedy")
            .metric("reconfigurations")
            .unwrap()
            > 0.0
    );
}

#[test]
fn differently_ordered_grids_produce_identical_per_scenario_results() {
    // Reordering an axis must never change any individual scenario's
    // result — seeds are position-independent. Compare rows by label.
    let forward = SweepGrid::named("order")
        .mcm_counts([16, 24])
        .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 350.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 350.0,
            },
        ])
        .run();
    let reversed = SweepGrid::named("order")
        .mcm_counts([24, 16])
        .fabric_kinds([FabricKind::WaveSelective, FabricKind::ParallelAwgrs])
        .patterns([
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 350.0,
            },
            TrafficPattern::Permutation { demand_gbps: 350.0 },
        ])
        .run();
    assert_eq!(forward.rows.len(), reversed.rows.len());
    for row in &forward.rows {
        let twin = reversed
            .rows
            .iter()
            .find(|r| r.label == row.label)
            .unwrap_or_else(|| panic!("row {} missing from reversed grid", row.label));
        assert_eq!(row.metrics, twin.metrics, "row {}", row.label);
    }
}

#[test]
fn differently_ordered_timeline_grids_agree_too() {
    let grid = acceptance_grid();
    let reversed = SweepGrid::named("timeline-acceptance")
        .mcm_counts([16])
        .timelines([
            DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 300.0 }, 4),
            DemandTimeline::hpc_mix(300.0, 2),
            DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5),
        ])
        .realloc_policies([
            ReallocationPolicy::GreedyResteer,
            ReallocationPolicy::Static,
        ]);
    let a = grid.run();
    let b = reversed.run();
    for row in &a.rows {
        let twin = b
            .rows
            .iter()
            .find(|r| r.label == row.label)
            .unwrap_or_else(|| panic!("row {} missing from reversed grid", row.label));
        assert_eq!(row.metrics, twin.metrics, "row {}", row.label);
    }
}

#[test]
fn hysteresis_recovers_most_of_the_resteer_gain() {
    let grid = SweepGrid::named("hyst")
        .mcm_counts([16])
        .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5)])
        .realloc_policies([
            ReallocationPolicy::Static,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.8,
            },
            ReallocationPolicy::GreedyResteer,
        ]);
    let report = grid.run();
    let sat: Vec<f64> = report
        .rows
        .iter()
        .map(|r| r.metric("satisfaction").unwrap())
        .collect();
    let reconf: Vec<f64> = report
        .rows
        .iter()
        .map(|r| r.metric("reconfigurations").unwrap())
        .collect();
    let epochs = report.rows[0].metric("epochs").unwrap();
    // Rows are static, hysteresis, greedy in policy-axis order. Both
    // re-steering policies beat the stale static assignment on a shifting
    // hot spot. (Greedy and hysteresis are not strictly ordered against
    // each other: the allocator is randomized and non-optimal, so a
    // hysteresis re-steer can land marginally above a greedy one.)
    assert!(
        sat[1] > sat[0] + 0.1,
        "hysteresis {} vs static {}",
        sat[1],
        sat[0]
    );
    assert!(
        sat[2] > sat[0] + 0.1,
        "greedy {} vs static {}",
        sat[2],
        sat[0]
    );
    // Static never moves; the re-steering policies do, and never more than
    // once per epoch after the first.
    assert_eq!(reconf[0], 0.0);
    assert!(reconf[1] > 0.0);
    assert!(reconf[2] > 0.0);
    assert!(reconf[1] <= epochs - 1.0);
    assert!(reconf[2] <= epochs - 1.0);
}
