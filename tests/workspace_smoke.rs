//! Workspace smoke test: every member crate's public entry type constructs
//! from its default (or paper-default) configuration without panicking, and
//! the umbrella crate re-exports each of them under its canonical path.
//!
//! This is deliberately shallow — constructing is the contract. Deeper
//! behavior is covered by each crate's unit tests and `end_to_end.rs`.

use photonic_disagg::core::rack_analysis::RackAnalysis;
use photonic_disagg::core::rack_builder::DisaggregatedRack;
use photonic_disagg::cpusim::{CoreKind, CpuConfig, Simulator};
use photonic_disagg::fabric::flowsim::{FlowSimConfig, FlowSimulator};
use photonic_disagg::fabric::rackfabric::RackFabric;
use photonic_disagg::fabric::routing::{IndirectRouter, OccupancyBoard};
use photonic_disagg::gpusim::{GpuConfig, GpuTimingModel};
use photonic_disagg::photonics::dwdm::DwdmLinkBuilder;
use photonic_disagg::photonics::fec::LinkErrorModel;
use photonic_disagg::rack::isoperf::IsoPerformanceAnalysis;
use photonic_disagg::rack::mcm::RackComposition;
use photonic_disagg::rack::power::RackPowerModel;
use photonic_disagg::workloads::production::ProductionDistributions;
use photonic_disagg::workloads::{cpu_benchmarks, gpu_applications};

#[test]
fn photonics_entry_types_construct() {
    let link = DwdmLinkBuilder::new().build();
    assert!(link.one_way_latency().ns() > 0.0);
    let fec = LinkErrorModel::paper_nominal();
    assert!(fec.analyze().effective_ber > 0.0);
}

#[test]
fn fabric_entry_types_construct() {
    let fabric = RackFabric::paper_awgr();
    assert!(fabric.report().min_direct_wavelengths >= 1);
    // The flow simulator and router construct against the default config.
    let _sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
    let mut board = OccupancyBoard::new(4);
    let mut router = IndirectRouter::with_fresh_state(1);
    router.route(&fabric, &mut board, 0, 1, 1);
}

#[test]
fn cpusim_entry_type_constructs_and_runs() {
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        let sim = Simulator::new(CpuConfig::baseline(kind));
        let bench = &cpu_benchmarks()[0];
        let result = sim.run(&bench.trace(1_000));
        assert!(result.cycles > 0);
    }
}

#[test]
fn gpusim_entry_type_constructs_and_runs() {
    let model = GpuTimingModel::new(GpuConfig::default());
    let apps = gpu_applications();
    assert_eq!(apps.len(), 24);
    assert!(model.run(&apps[0]).total_cycles > 0.0);
}

#[test]
fn workloads_entry_types_construct() {
    assert!(!cpu_benchmarks().is_empty());
    let dist = ProductionDistributions::cori_haswell();
    assert_eq!(dist.sample_nodes_stable(8, 1).len(), 8);
}

#[test]
fn rack_entry_types_construct() {
    let composition = RackComposition::paper_rack();
    assert!(composition.total_mcms() > 0);
    let iso = IsoPerformanceAnalysis::paper();
    assert!(iso.chip_reduction() > 0.0);
    let power = RackPowerModel::paper_rack();
    assert!(power.photonic_overhead().overhead_percent() > 0.0);
}

#[test]
fn core_entry_types_construct() {
    let rack = DisaggregatedRack::paper_awgr();
    assert_eq!(rack.summary().total_mcms, 350);
    let analysis = RackAnalysis::paper();
    assert!(!analysis.headline_claims().is_empty());
}
