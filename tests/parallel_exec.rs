//! Integration tests for the real parallel execution layer, driven through
//! the umbrella crate the way a downstream user would: the engine's
//! `parallel_map` primitive, the lazy `ScenarioIter` streaming path, and
//! the determinism contract across thread counts.
//!
//! The million-scenario test is ignored in debug builds (too slow
//! unoptimized) and enforced by the release-mode CI step, like the
//! CPU-experiment golden tests.

use photonic_disagg::core::sweep::{parallel_map, StreamConfig, SweepGrid};
use photonic_disagg::fabric::FabricKind;
use photonic_disagg::workloads::TrafficPattern;

fn reference_grid() -> SweepGrid {
    SweepGrid::named("par")
        .mcm_counts([24, 48])
        .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 400.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 2,
                demand_gbps: 300.0,
            },
        ])
        .replicates(3)
}

#[test]
fn grid_json_is_byte_identical_at_1_2_and_8_threads() {
    let grid = reference_grid();
    let reference = rayon::with_max_threads(1, || grid.run().to_json());
    assert_eq!(reference, grid.run_serial().to_json());
    for threads in [2, 8] {
        let json = rayon::with_max_threads(threads, || grid.run().to_json());
        assert_eq!(json, reference, "output drifted at {threads} threads");
    }
}

#[test]
fn parallel_map_is_order_preserving_under_load_imbalance() {
    // Wildly uneven per-item cost is exactly what chunk stealing must
    // handle without reordering results.
    let items: Vec<u64> = (0..500).collect();
    let expected: Vec<u64> = items.iter().map(|&x| (0..x % 97).sum::<u64>()).collect();
    for threads in [2, 8] {
        let got = rayon::with_max_threads(threads, || {
            parallel_map(&items, |&x| (0..x % 97).sum::<u64>())
        });
        assert_eq!(got, expected);
    }
}

#[test]
fn nested_parallel_maps_resolve_through_the_engine() {
    let outer: Vec<u32> = (0..8).collect();
    let got = rayon::with_max_threads(4, || {
        parallel_map(&outer, |&i| {
            let inner: Vec<u32> = (0..20).collect();
            parallel_map(&inner, |&j| i * j).iter().sum::<u32>()
        })
    });
    let expected: Vec<u32> = (0..8).map(|i| (0..20).map(|j| i * j).sum()).collect();
    assert_eq!(got, expected);
}

#[test]
fn streaming_matches_materialized_through_umbrella() {
    let grid = reference_grid();
    let materialized = grid.run();
    let streamed = grid.run_streaming(&StreamConfig {
        batch_size: 7,
        ..StreamConfig::default()
    });
    assert_eq!(streamed.to_json(), materialized.to_json());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "executes 1M scenarios; too slow unoptimized — covered by the release-mode CI step"
)]
fn million_scenario_grid_streams_without_materializing() {
    // Replicate-inflated to one million rows on a tiny rack: the lazy
    // ScenarioIter decodes each row O(1) from its index, the runner holds
    // one 4096-scenario batch at a time, and the report retains only the
    // capped row prefix — a Vec<Scenario> of the full grid never exists.
    let grid = SweepGrid::named("mega")
        .mcm_counts([4])
        .patterns([TrafficPattern::Uniform {
            flows_per_mcm: 1,
            demand_gbps: 50.0,
        }])
        .replicates(1_000_000);
    assert_eq!(grid.scenario_count(), 1_000_000);
    let report = grid.run_streaming(&StreamConfig::with_row_cap(8));
    assert_eq!(report.rows.len(), 8);
    assert_eq!(report.summary_metric("scenarios"), Some(1_000_000.0));
    assert_eq!(report.summary_metric("fabrics_built"), Some(1.0));
    let sat = report.summary_metric("mean_satisfaction").unwrap();
    assert!((0.0..=1.0 + 1e-9).contains(&sat), "mean satisfaction {sat}");

    // Subsample equivalence with the materialized path: replicate is the
    // innermost axis and seeds are position-independent, so the first 8
    // rows of the million-row grid are exactly the 8 rows of the same grid
    // truncated to 8 replicates — which is small enough to materialize.
    let subsample = grid.clone().replicates(8).run();
    assert_eq!(report.rows, subsample.rows);
}
