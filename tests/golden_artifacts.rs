//! Golden-file snapshot tests for the paper artifacts' `--json` output.
//!
//! Each test regenerates one artifact's [`SweepReport`] JSON and compares it
//! byte-for-byte against the checked-in fixture under `tests/golden/`, so
//! the harness's byte-identical-output claim is enforced by CI instead of
//! by hand. To regenerate the fixtures after an intentional change:
//!
//! ```sh
//! BLESS=1 cargo test --release --test golden_artifacts
//! ```
//!
//! The CPU-experiment artifacts (fig7, fig11) are too slow without
//! optimization, so those two tests are ignored in debug builds and run by
//! CI under `--release`.

use std::fs;
use std::path::PathBuf;

use photonic_disagg::core::sweep::artifacts;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare `json` against the named fixture, or rewrite the fixture when
/// `BLESS=1` is set.
fn check(name: &str, json: String) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, json + "\n").unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {}; run `BLESS=1 cargo test --release --test golden_artifacts` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim_end(),
        json,
        "{name} --json output drifted from tests/golden/{name}.json; if the change is intentional, \
         regenerate with `BLESS=1 cargo test --release --test golden_artifacts`"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full CPU experiment; too slow unoptimized — covered by the release-mode CI step"
)]
fn fig7_json_matches_golden() {
    check("fig7", artifacts::fig7().report.to_json());
}

#[test]
fn fig9_json_matches_golden() {
    check("fig9", artifacts::fig9().report.to_json());
}

#[test]
fn fig10_json_matches_golden() {
    check("fig10", artifacts::fig10().report.to_json());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the shared-Rodinia CPU experiment; too slow unoptimized — covered by the release-mode CI step"
)]
fn fig11_json_matches_golden() {
    check("fig11", artifacts::fig11().report.to_json());
}

#[test]
fn table1_json_matches_golden() {
    check("table1", artifacts::table1().report.to_json());
}

#[test]
fn power_overhead_json_matches_golden() {
    check(
        "power_overhead",
        artifacts::power_overhead().report.to_json(),
    );
}

#[test]
fn energy_smoke_json_matches_golden() {
    check("energy_smoke", artifacts::energy_smoke().report.to_json());
}

#[test]
fn flexgrid_smoke_json_matches_golden() {
    check(
        "flexgrid_smoke",
        artifacts::flexgrid_smoke().report.to_json(),
    );
}

#[test]
fn table3_json_matches_golden() {
    check("table3", artifacts::table3().report.to_json());
}

#[test]
fn golden_fixtures_are_byte_identical_at_1_2_and_8_threads() {
    // The execution layer's central claim: thread count never reaches the
    // output bytes. Regenerate every debug-runnable fixture under scoped
    // 1-, 2- and 8-thread caps and hold each against the checked-in golden
    // file (the two CPU-experiment fixtures have their own release-only
    // test below).
    for threads in [1, 2, 8] {
        rayon::with_max_threads(threads, || {
            for (name, json) in [
                ("table1", artifacts::table1().report.to_json()),
                ("table3", artifacts::table3().report.to_json()),
                ("fig9", artifacts::fig9().report.to_json()),
                ("fig10", artifacts::fig10().report.to_json()),
                (
                    "power_overhead",
                    artifacts::power_overhead().report.to_json(),
                ),
                ("energy_smoke", artifacts::energy_smoke().report.to_json()),
                (
                    "flexgrid_smoke",
                    artifacts::flexgrid_smoke().report.to_json(),
                ),
            ] {
                check(name, json);
            }
        });
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three full CPU experiments; too slow unoptimized — covered by the release-mode CI step"
)]
fn cpu_experiment_fixtures_are_byte_identical_at_1_2_and_8_threads() {
    for threads in [1, 2, 8] {
        rayon::with_max_threads(threads, || {
            check("fig7", artifacts::fig7().report.to_json());
            check("fig11", artifacts::fig11().report.to_json());
        });
    }
}
