//! Integration tests for the `core::sweep` scenario engine, driven through
//! the umbrella crate the way a downstream user would.

use photonic_disagg::core::sweep::{artifacts, SweepGrid};
use photonic_disagg::fabric::FabricKind;
use photonic_disagg::workloads::TrafficPattern;

fn two_axis_grid() -> SweepGrid {
    SweepGrid::named("it")
        .mcm_counts([24, 48])
        .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
        .patterns([TrafficPattern::Uniform {
            flows_per_mcm: 3,
            demand_gbps: 300.0,
        }])
        .direct_latencies_ns([35.0])
}

#[test]
fn two_axis_grid_twice_is_byte_identical_json() {
    let grid = two_axis_grid();
    let a = grid.run().to_json();
    let b = grid.run().to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"scenarios\":4"));
}

#[test]
fn parallel_matches_serial_through_umbrella() {
    let grid = two_axis_grid();
    assert_eq!(grid.run(), grid.run_serial());
}

#[test]
fn engine_scales_scenarios_without_new_loop_code() {
    // The point of the engine: a richer study is a bigger grid, not more
    // code. 2 fabrics x 2 sizes x 2 patterns x 2 latencies x 2 replicates.
    let grid = two_axis_grid()
        .patterns([
            TrafficPattern::Permutation { demand_gbps: 500.0 },
            TrafficPattern::NearestNeighbor {
                neighbors: 2,
                demand_gbps: 500.0,
            },
        ])
        .direct_latencies_ns([25.0, 35.0])
        .replicates(2);
    let report = grid.run();
    assert_eq!(report.rows.len(), 32);
    // Shared topologies are built once each (2 kinds x 2 sizes).
    assert_eq!(report.summary_metric("fabrics_built"), Some(4.0));
    for row in &report.rows {
        let sat = row.metric("satisfaction").unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&sat), "satisfaction {sat}");
        assert!(!row.metric("mean_latency_ns").unwrap().is_nan());
    }
}

#[test]
fn engine_backed_artifacts_are_deterministic() {
    // table1/table3 are cheap enough to regenerate twice in a test; the
    // figure artifacts share the same engine path.
    let t1a = artifacts::table1();
    let t1b = artifacts::table1();
    assert_eq!(t1a.report.to_json(), t1b.report.to_json());
    assert_eq!(t1a.text, t1b.text);
    let t3 = artifacts::table3();
    assert_eq!(t3.report.summary_metric("total_mcms"), Some(350.0));
}
