//! End-to-end tests of the `sweepd` binary: oneshot mode, the spool
//! lifecycle, kill-after-K-shards restart resume, and full-cache
//! resubmission — driving the real executable the way an operator (or the
//! CI smoke job) does.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use disagg_core::sample::SampleConfig;
use disagg_core::sweep::SweepGrid;

const JOB: &str = r#"{"grid":{"mcm_counts":[16,24],"replicates":4},"rows_per_shard":3}"#;

fn job_grid() -> SweepGrid {
    SweepGrid::default().mcm_counts([16, 24]).replicates(4)
}

const SAMPLED_JOB: &str = concat!(
    r#"{"grid":{"mcm_counts":[16,24],"replicates":8},"rows_per_shard":1,"#,
    r#""sample":{"clusters":4}}"#
);

fn sampled_grid() -> SweepGrid {
    SweepGrid::default().mcm_counts([16, 24]).replicates(8)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-sweepd-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweepd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweepd"))
        .args(args)
        .output()
        .expect("sweepd spawns")
}

fn submit(spool: &Path, name: &str, body: &str) {
    let incoming = spool.join("incoming");
    fs::create_dir_all(&incoming).unwrap();
    fs::write(incoming.join(name), body).unwrap();
}

#[test]
fn oneshot_prints_the_batch_identical_report() {
    let dir = temp_dir("oneshot");
    let job = dir.join("job.json");
    fs::write(&job, JOB).unwrap();
    let out = sweepd(&[
        "--oneshot",
        job.to_str().unwrap(),
        "--cache",
        dir.join("cache").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim_end(), job_grid().run().to_json());
    // Computation reuse is on by default, so the job line carries the
    // replayed/covered marker.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains(" (reuse "), "{stderr}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reuse_false_job_runs_without_the_marker_and_matches_bytes() {
    let dir = temp_dir("noreuse");
    let job = dir.join("job.json");
    fs::write(
        &job,
        r#"{"grid":{"mcm_counts":[16,24],"replicates":4},"rows_per_shard":3,"reuse":false}"#,
    )
    .unwrap();
    let out = sweepd(&[
        "--oneshot",
        job.to_str().unwrap(),
        "--cache",
        dir.join("cache").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Reuse is byte-exact: disabling it changes the stderr marker, never
    // the report.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim_end(), job_grid().run().to_json());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("(reuse"), "{stderr}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_daemon_resumes_from_checkpoints_byte_identically() {
    let dir = temp_dir("resume");
    let spool = dir.join("spool");
    submit(&spool, "smoke.json", JOB);
    let spool_arg = spool.to_str().unwrap();

    // "Kill" after one fresh shard: exit code 3, job still queued, one
    // checkpoint on disk.
    let crashed = sweepd(&["--spool", spool_arg, "--max-shards", "1"]);
    assert_eq!(crashed.status.code(), Some(3));
    assert!(spool.join("incoming/smoke.json").exists());
    let grid_dir = spool.join("cache").join(job_grid().grid_hash());
    assert!(grid_dir.join("shard0.json").exists());
    assert!(!grid_dir.join("shard1.json").exists());

    // Restart: the remaining shards execute, and the merged result is
    // byte-identical to an uninterrupted batch run.
    let resumed = sweepd(&["--spool", spool_arg]);
    assert!(resumed.status.success());
    assert!(!spool.join("incoming/smoke.json").exists());
    let result = fs::read_to_string(spool.join("done/smoke.result.json")).unwrap();
    assert_eq!(result, job_grid().run().to_json() + "\n");
    let stderr = String::from_utf8(resumed.stderr).unwrap();
    assert!(stderr.contains("cached 1 executed 2"), "{stderr}");

    // Resubmission of the same grid: served entirely from the cache —
    // zero scenario evaluations — and byte-identical again.
    submit(&spool, "again.json", JOB);
    let cached = sweepd(&["--spool", spool_arg]);
    assert!(cached.status.success());
    let stderr = String::from_utf8(cached.stderr).unwrap();
    assert!(
        stderr.contains("cached 3 executed 0 scenarios 0"),
        "{stderr}"
    );
    assert_eq!(
        fs::read_to_string(spool.join("done/again.result.json")).unwrap(),
        result
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_sampled_job_resumes_and_never_shares_shards_with_exact_runs() {
    let dir = temp_dir("sampled");
    let spool = dir.join("spool");
    submit(&spool, "sampled.json", SAMPLED_JOB);
    let spool_arg = spool.to_str().unwrap();
    let config = SampleConfig::with_clusters(4);
    let grid = sampled_grid();
    let sampled_key = format!("{}-s{}", grid.grid_hash(), config.sample_hash());

    // Kill after one fresh shard: the checkpoint lands under the composite
    // sampled cache key, never under the exact grid's key.
    let crashed = sweepd(&["--spool", spool_arg, "--max-shards", "1"]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(spool.join("incoming/sampled.json").exists());
    let sampled_dir = spool.join("cache").join(&sampled_key);
    assert!(sampled_dir.join("shard0.json").exists());
    assert!(!spool.join("cache").join(grid.grid_hash()).exists());

    // Restart: the resumed merge is byte-identical to an uninterrupted
    // in-process sampled run, and the job line carries the marker.
    let resumed = sweepd(&["--spool", spool_arg]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let result = fs::read_to_string(spool.join("done/sampled.result.json")).unwrap();
    assert_eq!(result, grid.run_sampled(&config).to_json() + "\n");
    let stderr = String::from_utf8(resumed.stderr).unwrap();
    assert!(stderr.contains(" (sampled)"), "{stderr}");

    // Resubmitting the same grid WITHOUT sampling must not reuse any
    // sampled shard: the exact job runs every shard fresh under its own
    // key and reproduces the exhaustive oracle.
    submit(
        &spool,
        "zz-exact.json",
        r#"{"grid":{"mcm_counts":[16,24],"replicates":8},"rows_per_shard":4}"#,
    );
    let exact = sweepd(&["--spool", spool_arg]);
    assert!(
        exact.status.success(),
        "{}",
        String::from_utf8_lossy(&exact.stderr)
    );
    let stderr = String::from_utf8(exact.stderr).unwrap();
    assert!(stderr.contains("cached 0 executed 4"), "{stderr}");
    assert!(!stderr.contains("(sampled)"), "{stderr}");
    assert_eq!(
        fs::read_to_string(spool.join("done/zz-exact.result.json")).unwrap(),
        grid.run().to_json() + "\n"
    );
    assert!(spool.join("cache").join(grid.grid_hash()).exists());
    assert!(sampled_dir.exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_jobs_land_in_failed_with_an_error_note() {
    let dir = temp_dir("failed");
    let spool = dir.join("spool");
    submit(&spool, "typo.json", r#"{"grid":{"mcmcounts":[16]}}"#);
    submit(&spool, "torn.json", r#"{"grid":"#);
    let out = sweepd(&["--spool", spool.to_str().unwrap()]);
    // Bad jobs are quarantined, not fatal: the daemon exits cleanly.
    assert!(out.status.success());
    for stem in ["typo", "torn"] {
        assert!(spool.join(format!("failed/{stem}.json")).exists());
        let note = fs::read_to_string(spool.join(format!("failed/{stem}.error"))).unwrap();
        assert!(!note.trim().is_empty());
    }
    assert!(!spool.join("incoming/typo.json").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_one() {
    let out = sweepd(&[]);
    assert_eq!(out.status.code(), Some(1));
    let both = sweepd(&["--oneshot", "a.json", "--spool", "b"]);
    assert_eq!(both.status.code(), Some(1));
}
