//! End-to-end tests of the `sweepd` binary: oneshot mode, the spool
//! lifecycle, kill-after-K-shards restart resume, and full-cache
//! resubmission — driving the real executable the way an operator (or the
//! CI smoke job) does.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use disagg_core::sweep::SweepGrid;

const JOB: &str = r#"{"grid":{"mcm_counts":[16,24],"replicates":4},"rows_per_shard":3}"#;

fn job_grid() -> SweepGrid {
    SweepGrid::default().mcm_counts([16, 24]).replicates(4)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-sweepd-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweepd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweepd"))
        .args(args)
        .output()
        .expect("sweepd spawns")
}

fn submit(spool: &Path, name: &str, body: &str) {
    let incoming = spool.join("incoming");
    fs::create_dir_all(&incoming).unwrap();
    fs::write(incoming.join(name), body).unwrap();
}

#[test]
fn oneshot_prints_the_batch_identical_report() {
    let dir = temp_dir("oneshot");
    let job = dir.join("job.json");
    fs::write(&job, JOB).unwrap();
    let out = sweepd(&[
        "--oneshot",
        job.to_str().unwrap(),
        "--cache",
        dir.join("cache").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim_end(), job_grid().run().to_json());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_daemon_resumes_from_checkpoints_byte_identically() {
    let dir = temp_dir("resume");
    let spool = dir.join("spool");
    submit(&spool, "smoke.json", JOB);
    let spool_arg = spool.to_str().unwrap();

    // "Kill" after one fresh shard: exit code 3, job still queued, one
    // checkpoint on disk.
    let crashed = sweepd(&["--spool", spool_arg, "--max-shards", "1"]);
    assert_eq!(crashed.status.code(), Some(3));
    assert!(spool.join("incoming/smoke.json").exists());
    let grid_dir = spool.join("cache").join(job_grid().grid_hash());
    assert!(grid_dir.join("shard0.json").exists());
    assert!(!grid_dir.join("shard1.json").exists());

    // Restart: the remaining shards execute, and the merged result is
    // byte-identical to an uninterrupted batch run.
    let resumed = sweepd(&["--spool", spool_arg]);
    assert!(resumed.status.success());
    assert!(!spool.join("incoming/smoke.json").exists());
    let result = fs::read_to_string(spool.join("done/smoke.result.json")).unwrap();
    assert_eq!(result, job_grid().run().to_json() + "\n");
    let stderr = String::from_utf8(resumed.stderr).unwrap();
    assert!(stderr.contains("cached 1 executed 2"), "{stderr}");

    // Resubmission of the same grid: served entirely from the cache —
    // zero scenario evaluations — and byte-identical again.
    submit(&spool, "again.json", JOB);
    let cached = sweepd(&["--spool", spool_arg]);
    assert!(cached.status.success());
    let stderr = String::from_utf8(cached.stderr).unwrap();
    assert!(
        stderr.contains("cached 3 executed 0 scenarios 0"),
        "{stderr}"
    );
    assert_eq!(
        fs::read_to_string(spool.join("done/again.result.json")).unwrap(),
        result
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_jobs_land_in_failed_with_an_error_note() {
    let dir = temp_dir("failed");
    let spool = dir.join("spool");
    submit(&spool, "typo.json", r#"{"grid":{"mcmcounts":[16]}}"#);
    submit(&spool, "torn.json", r#"{"grid":"#);
    let out = sweepd(&["--spool", spool.to_str().unwrap()]);
    // Bad jobs are quarantined, not fatal: the daemon exits cleanly.
    assert!(out.status.success());
    for stem in ["typo", "torn"] {
        assert!(spool.join(format!("failed/{stem}.json")).exists());
        let note = fs::read_to_string(spool.join(format!("failed/{stem}.error"))).unwrap();
        assert!(!note.trim().is_empty());
    }
    assert!(!spool.join("incoming/typo.json").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_one() {
    let out = sweepd(&[]);
    assert_eq!(out.status.code(), Some(1));
    let both = sweepd(&["--oneshot", "a.json", "--spool", "b"]);
    assert_eq!(both.status.code(), Some(1));
}
