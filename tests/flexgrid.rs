//! The incremental flex-grid spectrum solver against its exhaustive oracle.
//!
//! `FlexGridSimulator::run` (and the arena-reusing `run_in`) keeps a flat
//! per-fiber frequency-slot occupancy board alive between epochs, releasing
//! and re-admitting only the lightpaths whose flows changed;
//! `run_exhaustive` rebuilds every epoch's board from scratch through an
//! independent HashMap-backed occupancy path. The determinism contract
//! requires the two to agree *exactly* — same floats, same blocking and
//! fragmentation metrics, same per-epoch rows — for every admission x
//! defragmentation policy and every demand schedule. These tests pin that
//! equivalence over the canned workload timelines (including the
//! spectrum-churn schedule built for this layer) and, via proptest, over
//! randomized phase sequences with duplicate-pair and self-directed flows
//! thrown in, then check the sweep axis end to end through the umbrella
//! crate.

use photonic_disagg::core::sweep::SweepGrid;
use photonic_disagg::fabric::flexgrid::{
    AdmissionPolicy, DefragPolicy, FlexGridArena, FlexGridConfig, FlexGridSimulator, SpectrumPolicy,
};
use photonic_disagg::fabric::flowsim::Flow;
use photonic_disagg::fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use photonic_disagg::workloads::timeline::DemandTimeline;
use photonic_disagg::workloads::TrafficPattern;
use proptest::prelude::*;

fn fabric(mcms: u32) -> RackFabric {
    let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    cfg.mcm_count = mcms;
    RackFabric::new(cfg)
}

/// The full admission x defragmentation policy product.
fn all_policies() -> Vec<SpectrumPolicy> {
    let mut policies = Vec::new();
    for admission in [
        AdmissionPolicy::FirstFit,
        AdmissionPolicy::BestFit,
        AdmissionPolicy::ExactFit,
    ] {
        for defrag in [
            DefragPolicy::Never,
            DefragPolicy::OnBlock,
            DefragPolicy::EveryEpoch,
        ] {
            policies.push(SpectrumPolicy { admission, defrag });
        }
    }
    policies
}

/// Run one schedule under one policy through the incremental solver (fresh
/// arena and a deliberately dirty reused arena) and the exhaustive oracle,
/// requiring bit-exact equality.
fn assert_matches_oracle(fabric: &RackFabric, epochs: &[Vec<Flow>], policy: SpectrumPolicy) {
    let sim = FlexGridSimulator::new(
        fabric,
        FlexGridConfig {
            policy,
            ..FlexGridConfig::default()
        },
    );
    let oracle = sim.run_exhaustive(epochs);
    assert_eq!(sim.run(epochs), oracle, "run diverged under {policy:?}");

    let mut arena = FlexGridArena::new();
    assert_eq!(
        sim.run_in(&mut arena, epochs),
        oracle,
        "fresh-arena run_in diverged under {policy:?}"
    );
    // The arena now carries the previous run's occupancy board and carried
    // lightpaths; a second pass must still match (prepare() has to
    // neutralize every stale slot).
    assert_eq!(
        sim.run_in(&mut arena, epochs),
        oracle,
        "dirty-arena run_in diverged under {policy:?}"
    );
}

/// Every canned workload schedule, every spectrum policy: the incremental
/// solver is indistinguishable from exhaustive re-solving.
#[test]
fn incremental_spectrum_solver_matches_oracle_on_canned_schedules() {
    let fabric = fabric(24);
    let schedules = [
        DemandTimeline::elastic_churn(600.0, 2),
        DemandTimeline::shifting_hotspot(4, 500.0, 3, 2, 5),
        DemandTimeline::steady(
            TrafficPattern::HotSpot {
                hot_mcms: 4,
                demand_gbps: 600.0,
            },
            4,
        ),
    ];
    for schedule in &schedules {
        let epochs = schedule.epoch_matrices(24, 17);
        for policy in all_policies() {
            assert_matches_oracle(&fabric, &epochs, policy);
        }
    }
}

/// Duplicate src/dst pairs, self-directed flows, and out-of-range endpoints
/// hit the sanitize and blocking paths; the equivalence must survive all of
/// them.
#[test]
fn incremental_spectrum_solver_matches_oracle_with_degenerate_flows() {
    let fabric = fabric(12);
    let mut epochs = DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 3).epoch_matrices(12, 3);
    for (i, epoch) in epochs.iter_mut().enumerate() {
        epoch.push(Flow::new(0, 9, 75.0));
        epoch.push(Flow::new(0, 9, 25.0 + i as f64));
        epoch.push(Flow::new(3, 3, 50.0)); // Self-flow: carried locally.
        epoch.push(Flow::new(0, 40, 100.0)); // Endpoint past the rack: blocked.
    }
    for policy in all_policies() {
        assert_matches_oracle(&fabric, &epochs, policy);
    }
}

/// The sweep-level spectrum axis through the umbrella crate: deterministic
/// bytes, and the parallel executor agrees with the serial one.
#[test]
fn flexgrid_sweep_axis_is_deterministic_through_the_umbrella() {
    let grid = SweepGrid::named("it-fg")
        .mcm_counts([16])
        .timelines([DemandTimeline::elastic_churn(600.0, 2)])
        .spectrum_policies([
            SpectrumPolicy::default(),
            SpectrumPolicy {
                admission: AdmissionPolicy::BestFit,
                defrag: DefragPolicy::OnBlock,
            },
        ]);
    let report = grid.run();
    assert_eq!(report.rows.len(), 2);
    for row in &report.rows {
        assert!(row.metric("blocking_probability").is_some());
        assert!(row.metric("fragmentation_index").is_some());
    }
    assert_eq!(report.to_json(), grid.run().to_json());
    assert_eq!(report, grid.run_serial());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized phase sequences: arbitrary pattern per phase, arbitrary
    /// phase lengths and demands, hot sets that repeat or alternate. The
    /// incremental board must track the oracle exactly through every
    /// release/re-admit/defragment decision the sequence induces.
    #[test]
    fn incremental_spectrum_solver_matches_oracle_on_random_phases(
        seed in 0u64..1_000,
        policy_idx in 0usize..9,
        n_phases in 1usize..4,
        epochs_per_phase in 1u32..3,
        demand in 50.0f64..2_000.0,
    ) {
        let mcms = 16;
        let fabric = fabric(mcms);
        let mut timeline = DemandTimeline::named("prop");
        for p in 0..n_phases {
            // Pseudo-random but seed-reproducible pattern choice per phase.
            let pick = (seed + 31 * p as u64) % 4;
            let pattern = match pick {
                0 => TrafficPattern::HotSpot {
                    hot_mcms: 1 + (seed % 3) as u32,
                    demand_gbps: demand,
                },
                1 => TrafficPattern::Permutation { demand_gbps: demand },
                2 => TrafficPattern::Uniform { flows_per_mcm: 2, demand_gbps: demand },
                _ => TrafficPattern::NearestNeighbor { neighbors: 2, demand_gbps: demand },
            };
            timeline = timeline.phase(pattern, epochs_per_phase);
        }
        let epochs = timeline.epoch_matrices(mcms, seed);
        assert_matches_oracle(&fabric, &epochs, all_policies()[policy_idx]);
    }
}
