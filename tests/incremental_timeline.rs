//! The incremental epoch solver against its exhaustive oracle.
//!
//! `TimelineSimulator::run` (and the arena-reusing `run_in`) delta-updates a
//! persistent generation-stamped wavelength assignment between epochs;
//! `run_exhaustive` rebuilds every epoch's steering state from scratch
//! through the original HashMap path. The determinism contract requires the
//! two to agree *exactly* — same floats, same reconfiguration count, same
//! per-epoch rows — for every policy and every demand schedule. These tests
//! pin that equivalence over all the canned workload timelines and, via
//! proptest, over randomized phase sequences with duplicate-pair and
//! self-directed flows thrown in.

use photonic_disagg::fabric::flowsim::{Flow, FlowSimConfig};
use photonic_disagg::fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use photonic_disagg::fabric::timeline::{
    ReallocationPolicy, TimelineArena, TimelineConfig, TimelineSimulator,
};
use photonic_disagg::workloads::timeline::DemandTimeline;
use photonic_disagg::workloads::TrafficPattern;
use proptest::prelude::*;

fn fabric(mcms: u32) -> RackFabric {
    let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    cfg.mcm_count = mcms;
    RackFabric::new(cfg)
}

const POLICIES: [ReallocationPolicy; 4] = [
    ReallocationPolicy::Static,
    ReallocationPolicy::GreedyResteer,
    ReallocationPolicy::Hysteresis {
        min_satisfaction: 0.9,
    },
    // Threshold 0 never trips, exercising the stale-assignment reuse path.
    ReallocationPolicy::Hysteresis {
        min_satisfaction: 0.0,
    },
];

/// Run one schedule under one policy through the incremental solver (fresh
/// arena and a deliberately dirty reused arena) and the exhaustive oracle,
/// requiring bit-exact equality.
fn assert_matches_oracle(fabric: &RackFabric, epochs: &[Vec<Flow>], policy: ReallocationPolicy) {
    let sim = TimelineSimulator::new(
        fabric,
        TimelineConfig {
            policy,
            flow: FlowSimConfig::default(),
        },
    );
    let oracle = sim.run_exhaustive(epochs);
    assert_eq!(sim.run(epochs), oracle, "run diverged under {policy:?}");

    let mut arena = TimelineArena::new();
    assert_eq!(
        sim.run_in(&mut arena, epochs),
        oracle,
        "fresh-arena run_in diverged under {policy:?}"
    );
    // The arena now carries the previous run's grant/demand state; a second
    // pass must still match (prepare() has to neutralize stale entries).
    assert_eq!(
        sim.run_in(&mut arena, epochs),
        oracle,
        "dirty-arena run_in diverged under {policy:?}"
    );
}

/// Every canned workload schedule, every policy: the incremental solver is
/// indistinguishable from exhaustive re-solving.
#[test]
fn incremental_solver_matches_oracle_on_canned_schedules() {
    let fabric = fabric(24);
    let schedules = [
        DemandTimeline::steady(
            TrafficPattern::HotSpot {
                hot_mcms: 4,
                demand_gbps: 600.0,
            },
            4,
        ),
        DemandTimeline::shifting_hotspot(4, 500.0, 3, 2, 5),
        DemandTimeline::hpc_mix(200.0, 2),
    ];
    for schedule in &schedules {
        let epochs = schedule.epoch_matrices(24, 17);
        for policy in POLICIES {
            assert_matches_oracle(&fabric, &epochs, policy);
        }
    }
}

/// Duplicate src/dst pairs and self-directed flows hit the matrix-fold
/// accumulation and sanitize paths; the equivalence must survive both.
#[test]
fn incremental_solver_matches_oracle_with_degenerate_flows() {
    let fabric = fabric(12);
    let mut epochs = DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 3).epoch_matrices(12, 3);
    for (i, epoch) in epochs.iter_mut().enumerate() {
        epoch.push(Flow::new(0, 9, 75.0));
        epoch.push(Flow::new(0, 9, 25.0 + i as f64));
        epoch.push(Flow::new(3, 3, 50.0)); // Self-flow: sanitized away.
    }
    for policy in POLICIES {
        assert_matches_oracle(&fabric, &epochs, policy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized phase sequences: arbitrary pattern per phase, arbitrary
    /// phase lengths and demands, hot sets that repeat or alternate. The
    /// incremental solver must track the oracle exactly through every
    /// reconfigure/keep decision the sequence induces.
    #[test]
    fn incremental_solver_matches_oracle_on_random_phases(
        seed in 0u64..1_000,
        policy_idx in 0usize..POLICIES.len(),
        n_phases in 1usize..4,
        epochs_per_phase in 1u32..3,
        demand in 50.0f64..2_000.0,
    ) {
        let mcms = 16;
        let fabric = fabric(mcms);
        let mut timeline = DemandTimeline::named("prop");
        for p in 0..n_phases {
            // Pseudo-random but seed-reproducible pattern choice per phase.
            let pick = (seed + 31 * p as u64) % 4;
            let pattern = match pick {
                0 => TrafficPattern::HotSpot {
                    hot_mcms: 1 + (seed % 3) as u32,
                    demand_gbps: demand,
                },
                1 => TrafficPattern::Permutation { demand_gbps: demand },
                2 => TrafficPattern::Uniform { flows_per_mcm: 2, demand_gbps: demand },
                _ => TrafficPattern::NearestNeighbor { neighbors: 2, demand_gbps: demand },
            };
            timeline = timeline.phase(pattern, epochs_per_phase);
        }
        let epochs = timeline.epoch_matrices(mcms, seed);
        assert_matches_oracle(&fabric, &epochs, POLICIES[policy_idx]);
    }
}
