//! Minimal stand-in for the subset of `criterion` this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`.
//!
//! The build environment has no access to crates.io. This shim measures each
//! benchmark with `std::time::Instant` over an adaptive number of iterations
//! and prints a one-line mean per benchmark — no statistics, plots, or
//! comparison against saved baselines. It is sufficient for
//! `cargo bench --no-run` CI smoke coverage and for coarse local timing.
//!
//! **Bench trajectory files.** When the `PD_BENCH_DIR` environment variable
//! is set, every measurement is additionally recorded and, at the end of
//! `criterion_main!`, written out as one versioned single-line JSON file
//! per benchmark group: `PD_BENCH_DIR/BENCH_{group}.json` with shape
//! `{"version":1,"group":...,"benches":[{"name","mean_ns","iters"},..]}`.
//! The repository commits these snapshots (`BENCH_flowsim.json`,
//! `BENCH_timeline.json`, …) as its tracked performance trajectory; see
//! `docs/PERFORMANCE.md`.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark once one warm-up iteration has run.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded measurement, in group execution order.
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    iters: u64,
}

fn registry() -> &'static Mutex<Vec<Record>> {
    static REG: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Write one `BENCH_{group}.json` per benchmark group run so far into the
/// directory named by `PD_BENCH_DIR` (no-op when the variable is unset).
/// Called by `criterion_main!` after all groups finish; safe to call again
/// (rewrites the same files).
pub fn write_bench_reports() {
    let Ok(dir) = std::env::var("PD_BENCH_DIR") else {
        return;
    };
    let records = registry().lock().unwrap();
    // Group in first-seen order so file contents are stable run to run.
    let mut groups: Vec<&str> = Vec::new();
    for r in records.iter() {
        if !groups.contains(&r.group.as_str()) {
            groups.push(&r.group);
        }
    }
    for group in groups {
        let mut json = format!("{{\"version\":1,\"group\":\"{group}\",\"benches\":[");
        for (i, r) in records.iter().filter(|r| r.group == group).enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}}}",
                r.id, r.mean_ns, r.iters
            ));
        }
        json.push_str("]}\n");
        let path = format!("{dir}/BENCH_{group}.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

/// The mean of an already-recorded benchmark of `group`, by bench id
/// (e.g. `"run_alloc/permutation_350mcm"`). Shim extension: lets a bench
/// target assert relative-performance floors between its own measurements
/// (arena-vs-alloc style) after recording them.
pub fn recorded_mean_ns(group: &str, id: &str) -> Option<f64> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .find(|r| r.group == group && r.id == id)
        .map(|r| r.mean_ns)
}

/// Identifier for a parameterized benchmark, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly within a fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // Warm-up, also primes caches/allocations.
        let budget_start = Instant::now();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < 3 || (budget_start.elapsed() < MEASURE_BUDGET && iters < 10_000) {
            let start = Instant::now();
            black_box(routine());
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean = elapsed / iters as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark named `id` in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{}: mean {:?} over {} iters",
            self.name, id, b.mean, b.iters
        );
        registry().lock().unwrap().push(Record {
            group: self.name.clone(),
            id: id.to_string(),
            mean_ns: b.mean.as_secs_f64() * 1e9,
            iters: b.iters,
        });
        self
    }

    /// Runs a benchmark that borrows a per-case `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("crit").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group. Ignores criterion CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; the shim has no CLI.
            $( $group(); )+
            // Persist the trajectory files when PD_BENCH_DIR is set.
            $crate::write_bench_reports();
        }
    };
}
