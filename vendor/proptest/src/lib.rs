//! Minimal stand-in for the subset of `proptest` this workspace's tests use:
//! the `proptest!` macro over functions whose arguments are drawn from range
//! strategies, `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig`.
//!
//! The build environment has no access to crates.io. This shim does plain
//! random testing: each case draws every argument uniformly from its range
//! with a fixed per-test seed (derived from the test name, so runs are
//! reproducible). There is no shrinking — a failure reports the exact inputs
//! instead. Swap the real proptest back in via `[workspace.dependencies]`
//! for shrinking and richer strategies.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as SampleRng;
use rand::{Rng, SeedableRng};

/// Per-`proptest!` block configuration (subset of the real type).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; keep that so coverage matches.
        ProptestConfig { cases: 256 }
    }
}

/// Seeds the per-test generator from the test's name (FNV-1a).
pub fn rng_for_test(name: &str) -> SampleRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SampleRng::seed_from_u64(h)
}

/// A source of random values for one macro argument (subset of the real
/// `Strategy`, which also supports shrinking and combinators).
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs for
/// `cases` randomly drawn argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}\n    inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the enclosing property (with the stringified condition) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {} = {:?}, {} = {:?}",
                stringify!($left),
                left,
                stringify!($right),
                right,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0usize..5, w in 1u64..=8) {
            prop_assert!(v < 5);
            prop_assert!((1..=8).contains(&w));
            prop_assert_eq!(v + 1, v + 1);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use rand::Rng;
        let mut a = crate::rng_for_test("some_test");
        let mut b = crate::rng_for_test("some_test");
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }
}
