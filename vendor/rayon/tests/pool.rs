//! Semantics tests for the chunk-stealing pool and the prelude surface:
//! order preservation, panic propagation, nesting, empty input, and the
//! single-thread fallback.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;
use rayon::{pool, with_max_threads};

#[test]
fn par_iter_matches_iter() {
    let v = [1u32, 2, 3, 4];
    let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
    assert_eq!(doubled, vec![2, 4, 6, 8]);
    let sum: u32 = (1u32..=4).into_par_iter().sum();
    assert_eq!(sum, 10);
}

#[test]
fn order_is_preserved_at_every_thread_count() {
    let items: Vec<usize> = (0..10_000).collect();
    let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
    for threads in [1, 2, 3, 8, 64] {
        let got: Vec<usize> =
            with_max_threads(threads, || items.par_iter().map(|x| x * 3).collect());
        assert_eq!(got, expected, "order broke at {threads} threads");
    }
}

#[test]
fn every_index_runs_exactly_once() {
    let len = 5000;
    let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
    with_max_threads(8, || {
        pool::run(len, |i| counts[i].fetch_add(1, Ordering::Relaxed));
    });
    assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
}

#[test]
fn empty_input_yields_empty_output() {
    let items: [u32; 0] = [];
    let out: Vec<u32> = items.par_iter().map(|x| x + 1).collect();
    assert!(out.is_empty());
    let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
    assert!(out.is_empty());
    assert_eq!(pool::run(0, |i| i).len(), 0);
}

#[test]
fn single_thread_cap_falls_back_to_sequential() {
    // With one thread the pool must not spawn: results come back in order
    // from a plain loop (observable through strictly increasing indices).
    let seen = std::sync::Mutex::new(Vec::new());
    with_max_threads(1, || {
        pool::run(100, |i| seen.lock().unwrap().push(i));
    });
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen, (0..100).collect::<Vec<_>>());
}

#[test]
fn panics_propagate_with_their_payload() {
    let result = std::panic::catch_unwind(|| {
        with_max_threads(4, || {
            pool::run(1000, |i| {
                if i == 617 {
                    panic!("boom at {i}");
                }
                i
            })
        })
    });
    let payload = result.expect_err("panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .expect("payload must survive the pool");
    assert_eq!(msg, "boom at 617");
}

#[test]
fn nested_parallel_maps_complete() {
    let outer: Vec<usize> = (0..16).collect();
    let got: Vec<usize> = with_max_threads(4, || {
        outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..50usize).collect();
                let inner_sum: Vec<usize> = inner.par_iter().map(|&j| i * j).collect();
                inner_sum.iter().sum()
            })
            .collect()
    });
    let expected: Vec<usize> = (0..16).map(|i| (0..50).map(|j| i * j).sum()).collect();
    assert_eq!(got, expected);
}

#[test]
fn owned_map_moves_items_in_order() {
    let items: Vec<String> = (0..500).map(|i| i.to_string()).collect();
    let got: Vec<usize> = with_max_threads(4, || {
        items.clone().into_par_iter().map(|s| s.len()).collect()
    });
    let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
    assert_eq!(got, expected);
}

#[test]
fn float_sums_are_byte_identical_to_serial() {
    // The shim's determinism guarantee: reductions fold sequentially, so
    // parallel and serial sums agree bitwise even for floats.
    let items: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let serial: f64 = items.iter().map(|x| x * 1.5).sum();
    for threads in [1, 2, 8] {
        let parallel: f64 = with_max_threads(threads, || items.par_iter().map(|x| x * 1.5).sum());
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }
}

#[test]
fn nested_calls_inherit_the_thread_cap() {
    // Workers inherit the caller's configured count, so a nested parallel
    // call inside a capped region stays capped instead of falling back to
    // the process-wide default.
    let observed = std::sync::Mutex::new(Vec::new());
    with_max_threads(3, || {
        pool::run(64, |_| {
            observed.lock().unwrap().push(rayon::current_num_threads());
        });
    });
    let observed = observed.into_inner().unwrap();
    assert_eq!(observed.len(), 64);
    assert!(observed.iter().all(|&n| n == 3), "{observed:?}");
}

#[test]
fn with_max_threads_restores_on_exit() {
    let before = rayon::current_num_threads();
    with_max_threads(3, || {
        assert_eq!(rayon::current_num_threads(), 3);
        with_max_threads(1, || assert_eq!(rayon::current_num_threads(), 1));
        assert_eq!(rayon::current_num_threads(), 3);
    });
    assert_eq!(rayon::current_num_threads(), before);
}
