//! The parallel-iterator types returned by the prelude traits.
//!
//! Only the adaptor surface this workspace uses is implemented: `map` +
//! `collect` on borrowed slices ([`ParSlice`]) and owned sequences
//! ([`ParVec`]), plus `sum` and `for_each`. Mapping fans out through
//! [`pool::run`]; reductions (`sum`) fold the mapped results *sequentially
//! on the caller's thread* so floating-point results stay byte-identical
//! to a serial run — the workspace's determinism contract.

use crate::pool;

/// Parallel iterator over `&[T]` (from
/// [`par_iter`](crate::prelude::IntoParallelRefIterator::par_iter)).
pub struct ParSlice<'a, T> {
    pub(crate) items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Map every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Map every item through `f` in parallel, with a per-worker `state`
    /// built by `init` once per worker thread and reused across every item
    /// that worker processes (rayon's `map_init`).
    ///
    /// This is the hook for reusable scratch arenas: `state` needs neither
    /// `Send` nor `Sync` because it never leaves its worker. Determinism is
    /// preserved exactly when `f`'s result does not depend on `state`'s
    /// history — which is the contract scratch buffers satisfy.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParSliceMapInit<'a, T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParSliceMapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Run `f` on every item (parallel, no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        pool::run(self.items.len(), |i| f(&self.items[i]));
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped [`ParSlice`], ready to collect.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParSliceMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map across the pool, preserving input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(pool::run(self.items.len(), |i| (self.f)(&self.items[i])))
    }

    /// Execute the map and fold the results sequentially (deterministic
    /// for floating-point sums).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        pool::run(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .sum()
    }
}

/// A mapped-with-state [`ParSlice`] (from
/// [`map_init`](ParSlice::map_init)), ready to collect.
pub struct ParSliceMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T: Sync, INIT, F> ParSliceMapInit<'a, T, INIT, F> {
    /// Execute the map across the pool, preserving input order. Each worker
    /// thread builds one state with `init` and reuses it for every item it
    /// steals.
    pub fn collect<S, R, C>(self) -> C
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_vec(pool::run_with_init(self.items.len(), self.init, |s, i| {
            (self.f)(s, &self.items[i])
        }))
    }
}

/// Parallel iterator over an owned sequence (from
/// [`into_par_iter`](crate::prelude::IntoParallelIterator::into_par_iter)).
pub struct ParVec<T> {
    pub(crate) items: Vec<T>,
}

impl<T: Send + Sync> ParVec<T> {
    /// Map every item through `f` in parallel. Items are moved into `f`
    /// chunk by chunk.
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }

    /// Sum the items on the caller's thread (sequential by design: see the
    /// module docs).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped [`ParVec`], ready to collect.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParVecMap<T, F>
where
    T: Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map across the pool, preserving input order.
    ///
    /// Ownership transfer without `unsafe`: the items are pre-split into
    /// per-chunk vectors behind `Mutex<Option<..>>` cells that each worker
    /// `take`s exactly once.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let len = self.items.len();
        if len == 0 {
            return C::from_ordered_vec(Vec::new());
        }
        let threads = pool::current_num_threads();
        let chunk = (len / (threads * 8)).max(1);
        // Split chunks off the *back* (O(chunk) each) and reverse, rather
        // than off the front (which would recopy the whole tail per chunk).
        let mut chunks: Vec<std::sync::Mutex<Option<Vec<T>>>> = Vec::with_capacity(len / chunk + 1);
        let mut items = self.items;
        while items.len() > chunk {
            let tail = items.split_off(items.len() - chunk);
            chunks.push(std::sync::Mutex::new(Some(tail)));
        }
        chunks.push(std::sync::Mutex::new(Some(items)));
        chunks.reverse();
        let f = &self.f;
        let mapped: Vec<Vec<R>> = pool::run(chunks.len(), |i| {
            let chunk = chunks[i].lock().unwrap().take().expect("chunk taken once");
            chunk.into_iter().map(f).collect()
        });
        let mut out = Vec::with_capacity(len);
        for part in mapped {
            out.extend(part);
        }
        C::from_ordered_vec(out)
    }

    /// Execute the map and fold the results sequentially (deterministic
    /// for floating-point sums).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        let v: Vec<R> = self.collect();
        v.into_iter().sum()
    }
}

/// Collections a parallel map can land in (the stand-in for rayon's
/// `FromParallelIterator`). The input vector is already in source order.
pub trait FromParallelIterator<R> {
    /// Build the collection from the ordered mapped results.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}
