//! The chunk-stealing execution core behind the parallel iterators.
//!
//! [`run`] executes `f(0..len)` across worker threads and returns the
//! results in input order. Workers are materialized per call with
//! [`std::thread::scope`] (so borrowed data crosses thread boundaries
//! without `unsafe`) and *steal chunks* of the index space from a shared
//! atomic cursor: a worker that finishes its chunk immediately claims the
//! next unclaimed one, so uneven per-item cost load-balances itself.
//!
//! Guarantees, in order of importance:
//!
//! * **Order preservation** — the returned `Vec` is exactly
//!   `(0..len).map(f).collect()`, whatever the interleaving of workers.
//! * **Byte-identical to serial** — `f` is called exactly once per index
//!   and results are reassembled by chunk offset; no reduction reorders
//!   floating-point operations.
//! * **Panic propagation** — a panic in `f` on any worker poisons the
//!   cursor (stopping further claims), is carried back to the caller, and
//!   resumed there with the original payload.
//! * **Nested calls** — a worker may itself call [`run`] (directly or via
//!   `par_iter`); the nested call simply materializes its own scope. No
//!   global queue exists, so nesting cannot deadlock.
//! * **Single-thread fallback** — with one configured thread (or one item)
//!   the call degenerates to a plain sequential loop on the caller's
//!   stack: no threads, no atomics.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Thread count configured by [`ThreadPoolBuilder::build_global`]; read
/// once, before the first parallel call.
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_max_threads`].
    static MAX_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Error returned when [`ThreadPoolBuilder::build_global`] is called after
/// the global thread count is already fixed (mirrors rayon's
/// `ThreadPoolBuildError`).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global thread count (the subset of rayon's
/// `ThreadPoolBuilder` this workspace uses).
///
/// ```
/// // Usually called once at binary startup; later calls fail.
/// let _ = rayon::ThreadPoolBuilder::new().num_threads(2).build_global();
/// assert!(rayon::current_num_threads() >= 1);
/// ```
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder; without [`num_threads`](Self::num_threads) the pool
    /// sizes itself to [`std::thread::available_parallelism`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads (0 means "available parallelism",
    /// as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Fix the global thread count. Errs if already fixed.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_parallelism(),
            Some(n) => n,
        };
        GLOBAL_THREADS
            .set(n.max(1))
            .map_err(|_| ThreadPoolBuildError)
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel calls on this thread will use: the
/// [`with_max_threads`] override if one is installed, else the
/// [`ThreadPoolBuilder::build_global`] setting, else available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = MAX_THREADS.with(|m| m.get()) {
        return n.max(1);
    }
    *GLOBAL_THREADS.get_or_init(default_parallelism)
}

/// Run `f` with parallel calls issued from this thread capped at `n`
/// threads, restoring the previous cap afterwards (also on panic).
///
/// This is how tests pin a deterministic thread count without touching the
/// process-wide setting, and how benchmarks compare 1-thread vs N-thread
/// wall-clock on the same grid in one process.
///
/// ```
/// use rayon::prelude::*;
/// let v = [1u32, 2, 3];
/// let doubled: Vec<u32> =
///     rayon::with_max_threads(1, || v.par_iter().map(|x| x * 2).collect());
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn with_max_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MAX_THREADS.with(|m| m.replace(Some(n.max(1)))));
    f()
}

/// Execute `f(i)` for every `i in 0..len` and return the results in index
/// order. See the module docs for the guarantees.
pub fn run<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_with_init(len, || (), move |(), i| f(i))
}

/// Execute `f(&mut state, i)` for every `i in 0..len`, where every worker
/// thread builds its own `state` with `init` exactly once and reuses it
/// across all the chunks it steals (the engine behind `map_init`).
///
/// `state` never crosses a thread boundary, so it needs neither `Send` nor
/// `Sync`; this is what lets callers keep allocation-heavy scratch arenas
/// warm across work items. Ordering, determinism, panic-propagation, and
/// single-thread-fallback guarantees are identical to [`run`] — per-worker
/// state can only affect results if `f` lets it, which deterministic
/// callers must not.
pub fn run_with_init<S, R, INIT, F>(len: usize, init: INIT, f: F) -> Vec<R>
where
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let configured = current_num_threads();
    let threads = configured.min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }

    // Small chunks relative to the thread count so stealing load-balances
    // uneven items; each claim is one fetch_add.
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let completed: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(len / chunk + 1));
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let worker = || {
        // One state per worker, built before the first chunk claim and kept
        // warm across every chunk this worker steals.
        let mut state = init();
        while !poisoned.load(Ordering::Relaxed) {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            let end = (start + chunk).min(len);
            let mut out = Vec::with_capacity(end - start);
            let status = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    out.push(f(&mut state, i));
                }
            }));
            match status {
                Ok(()) => completed.lock().unwrap().push((start, out)),
                Err(payload) => {
                    // Stop the other workers from claiming further chunks
                    // and keep the first payload for the caller.
                    poisoned.store(true, Ordering::Relaxed);
                    panic_payload.lock().unwrap().get_or_insert(payload);
                    break;
                }
            }
        }
    };

    std::thread::scope(|s| {
        for _ in 0..threads - 1 {
            // Workers inherit the caller's configured count (not the
            // len-capped one), so nested parallel calls on a worker respect
            // a `with_max_threads` cap instead of falling back to the
            // process-wide default.
            s.spawn(|| with_max_threads(configured, worker));
        }
        // The caller is a full member of the pool: it steals chunks like
        // every spawned worker, so a nested `run` on a worker thread makes
        // progress even if all other threads are busy.
        worker();
    });

    if let Some(payload) = panic_payload.into_inner().unwrap() {
        resume_unwind(payload);
    }

    let mut chunks = completed.into_inner().unwrap();
    chunks.sort_unstable_by_key(|(start, _)| *start);
    let mut results = Vec::with_capacity(len);
    for (_, mut part) in chunks {
        results.append(&mut part);
    }
    debug_assert_eq!(results.len(), len);
    results
}
