//! Offline stand-in for the subset of `rayon` this workspace uses —
//! **really parallel** since the execution-layer rebuild.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the `par_iter()` / `into_par_iter()` prelude surface on a
//! `std::thread`-based chunk-stealing pool (see [`pool`]): workers claim
//! chunks of the index space from a shared atomic cursor, results are
//! reassembled in input order, and panics propagate to the caller with
//! their original payload. Reductions (`sum`) fold sequentially on the
//! caller's thread, so numeric results — floating point included — are
//! byte-identical to a serial run at any thread count.
//!
//! Thread-count control, in precedence order:
//!
//! 1. [`with_max_threads`] — a scoped per-thread cap (tests, benchmarks);
//! 2. [`ThreadPoolBuilder::build_global`] — the process-wide setting a
//!    binary fixes once at startup (e.g. from `--threads` / `PD_THREADS`);
//! 3. [`std::thread::available_parallelism`] — the default.
//!
//! Repointing `[workspace.dependencies] rayon` at crates.io restores the
//! real rayon with no source changes in the experiment drivers: everything
//! here keeps rayon's names and semantics (modulo the sequential-`sum`
//! determinism guarantee, which real rayon does not make).

#![forbid(unsafe_code)]

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, with_max_threads, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! Parallel-iterator extension traits.

    use crate::iter::{ParSlice, ParVec};

    pub use crate::iter::FromParallelIterator;

    /// Replacement for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type iterated by reference.
        type Item: 'data;

        /// Returns a parallel iterator over `&self`'s items.
        fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParSlice<'data, T> {
            ParSlice { items: self }
        }
    }

    /// Replacement for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type iterated by value.
        type Item: Send;

        /// Consumes `self`, returning a parallel iterator over its items.
        fn into_par_iter(self) -> ParVec<Self::Item>;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;

        fn into_par_iter(self) -> ParVec<I::Item> {
            ParVec {
                items: self.into_iter().collect(),
            }
        }
    }
}
