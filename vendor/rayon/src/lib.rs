//! Sequential stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter()` here
//! returns the ordinary sequential slice iterator: every adaptor
//! (`map`, `filter`, `collect`, ...) keeps working and results are identical,
//! just not parallel. When the real rayon is available again, repointing
//! `[workspace.dependencies] rayon` at crates.io restores parallelism with no
//! source changes in the experiment drivers.

pub mod prelude {
    //! Parallel-iterator extension traits (sequential here).

    /// Sequential replacement for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type returned by [`par_iter`](Self::par_iter).
        type Iter: Iterator;

        /// Returns a (sequential) iterator over `&self`'s items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential replacement for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The iterator type returned by [`into_par_iter`](Self::into_par_iter).
        type Iter: Iterator;

        /// Consumes `self`, returning a (sequential) iterator over its items.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u32 = (1u32..=4).into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
