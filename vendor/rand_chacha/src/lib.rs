//! API-compatible stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a replacement. Unlike the other shims this one implements the genuine
//! ChaCha8 block function (RFC 7539 core with 8 rounds), so the "stable"
//! sampler in `workloads::production` really is a cryptographic stream whose
//! values are reproducible anywhere — though the key schedule from
//! `seed_from_u64` differs from the real crate's, so streams are stable
//! per-repository rather than identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds, seeded from a 64-bit value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        // Key: SplitMix64 expansion of the seed into 8 words.
        let mut x = seed;
        for i in 0..4 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            state[4 + 2 * i] = z as u32;
            state[5 + 2 * i] = (z >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
