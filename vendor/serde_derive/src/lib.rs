//! No-op replacement for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal stand-in. `#[derive(Serialize, Deserialize)]` must parse and
//! expand, but the workspace serializes through hand-rolled writers and
//! deserializes through the vendored `serde::json` parser (both chosen for
//! byte-deterministic round-trips), so the derives expand to nothing.
//! Swapping in the real serde is a one-line change in the root manifest's
//! `[workspace.dependencies]`.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
