//! A complete, hand-rolled JSON deserializer.
//!
//! This is the parse side of the workspace's serialization story: the
//! writers (e.g. `SweepReport::to_json` in `disagg_core`) are hand-rolled
//! for byte-determinism, and this module is their inverse. It implements
//! the full RFC 8259 grammar — every escape (including `\uXXXX` surrogate
//! pairs), fraction/exponent numbers, arbitrarily nested containers — with
//! byte-offset error reporting and a recursion-depth guard.
//!
//! Two deliberate departures from `serde_json`'s data model, both in the
//! service of *lossless round-trips*:
//!
//! * [`Number`] keeps the **raw literal text** of every number alongside
//!   nothing else. `as_f64` parses on demand (Rust's `str::parse::<f64>` is
//!   correctly rounded, so a shortest-round-trip float written with
//!   `format!("{v}")` parses back to the identical bits), and `as_u64`
//!   accepts the full 64-bit range — a `u64` seed above 2^53 survives a
//!   round-trip that an f64-only model would corrupt.
//! * [`Value::Object`] is an **order-preserving** association list, so
//!   re-emitting a parsed document can reproduce the writer's key order.
//!
//! ```
//! use serde::json::{parse, Value};
//!
//! let v = parse(r#"{"name":"sweep","seeds":[18446744073709551615],"ok":true}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("sweep"));
//! let seeds = v.get("seeds").and_then(Value::as_array).unwrap();
//! assert_eq!(seeds[0].as_u64(), Some(u64::MAX));
//! assert!(parse("{\"trailing\":1} garbage").is_err());
//! ```

use std::fmt;

/// Maximum container nesting depth accepted by [`parse`]; prevents stack
/// exhaustion on adversarial input (e.g. ten thousand `[`s).
const MAX_DEPTH: usize = 128;

/// A JSON number, stored as its raw literal text.
///
/// Keeping the text (rather than eagerly converting to `f64`) makes the
/// parser lossless: integers use the full `u64`/`i64` range and floats
/// re-parse to the exact bits the writer formatted.
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    text: String,
}

impl Number {
    /// The raw literal as it appeared in the document (e.g. `"-1.5e-9"`).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The number as an `f64`. JSON number syntax is a subset of Rust's
    /// float grammar, so this cannot fail for a parsed [`Number`]; values
    /// beyond f64 range round to infinity per IEEE 754.
    pub fn as_f64(&self) -> f64 {
        self.text.parse().expect("valid JSON number parses as f64")
    }

    /// The number as a `u64`, if it is a non-negative integer literal in
    /// range (no sign, fraction, or exponent).
    pub fn as_u64(&self) -> Option<u64> {
        self.text.parse().ok()
    }

    /// The number as an `i64`, if it is an integer literal in range.
    pub fn as_i64(&self) -> Option<i64> {
        self.text.parse().ok()
    }
}

/// A parsed JSON document.
///
/// Objects are order-preserving `(key, value)` lists — duplicate keys are
/// kept as written; [`Value::get`] returns the first match.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number literal; see [`Number`].
    Number(Number),
    /// A string with all escapes resolved.
    String(String),
    /// `[ ... ]`.
    Array(Vec<Value>),
    /// `{ ... }` in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// The number as `u64`, if this is an in-range non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number().and_then(Number::as_u64)
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document. Leading/trailing whitespace is
/// allowed; anything else after the document is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    // Unescaped runs are valid UTF-8 sub-slices of the input
                    // (quotes and backslashes are ASCII, so they never split
                    // a multi-byte sequence).
                    out.push_str(self.run_since(run_start));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run_since(run_start));
                    self.pos += 1;
                    out.push(self.escape()?);
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn run_since(&self, start: usize) -> &str {
        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input slice is valid UTF-8")
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => {
                self.pos -= 1;
                return Err(self.err(format!("invalid escape '\\{}'", c as char)));
            }
        })
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: must be followed by `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&high) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit in number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        Ok(Value::Number(Number {
            text: self.run_since(start).to_string(),
        }))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(
            parse("-17").unwrap().as_number().unwrap().as_i64(),
            Some(-17)
        );
    }

    #[test]
    fn numbers_keep_raw_text_and_full_integer_range() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_number().unwrap().text(), "18446744073709551615");
        // Shortest-round-trip floats parse back to identical bits.
        for x in [0.1f64, 1.0 / 3.0, 1e-9, 2.5e300, -0.0] {
            let text = format!("{x}");
            let parsed = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "round-trip of {text}");
        }
        assert_eq!(parse("1.5e-9").unwrap().as_f64(), Some(1.5e-9));
        assert_eq!(parse("1E+2").unwrap().as_f64(), Some(100.0));
        // Fractions and exponents are not integers.
        assert_eq!(parse("1.0").unwrap().as_u64(), None);
    }

    #[test]
    fn invalid_numbers_rejected() {
        for bad in ["01", "-", "1.", ".5", "1e", "1e+", "+1", "NaN", "Infinity"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn strings_resolve_every_escape() {
        let v = parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
        // BMP escape, literal UTF-8, and a surrogate pair.
        let v = parse(r#""\u00e9 é \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é é 😀"));
    }

    #[test]
    fn bad_strings_rejected() {
        for bad in [
            "\"unterminated",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn containers_nest_and_preserve_order() {
        let v = parse(r#"{"b":1,"a":[true,null,{"x":2}],"b":3}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        // Duplicate keys are kept; lookup returns the first.
        assert_eq!(fields.len(), 3);
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(1));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_bool(), Some(true));
        assert!(a[1].is_null());
        assert_eq!(a[2].get("x").and_then(Value::as_u64), Some(2));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{ }").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn structural_errors_carry_offsets() {
        let e = parse("{\"a\":1,}").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(parse("[1,2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1] []").is_err());
        assert!(format!("{}", parse("nope").unwrap_err()).contains("byte 0"));
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let deep = "[".repeat(400) + &"]".repeat(400);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }
}
