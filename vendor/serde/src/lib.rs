//! API-compatible stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement: the `Serialize`/`Deserialize` derive macros (no-op
//! expansions) and marker traits with blanket impls so generic bounds remain
//! satisfiable. Nothing in the repository serializes data yet; when a real
//! output format lands, point `[workspace.dependencies] serde` back at
//! crates.io and everything keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
