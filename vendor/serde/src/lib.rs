//! API-compatible stand-in for the subset of `serde` this workspace uses,
//! plus a real JSON deserializer.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal replacement: the `Serialize`/`Deserialize` derive
//! macros (no-op expansions) and marker traits with blanket impls so
//! generic bounds remain satisfiable. Serialization itself is hand-rolled
//! at the call sites (e.g. `SweepReport::to_json` in `disagg_core`) for
//! byte-determinism; the [`json`] module provides the matching parse side —
//! a complete RFC 8259 deserializer with raw-text numbers and
//! order-preserving objects, used by the `sweepd` job server and the
//! round-trip tests.
//!
//! Repointing `[workspace.dependencies] serde` at crates.io keeps the
//! derive/marker surface compiling unchanged; the [`json`] module is
//! shim-only (the real ecosystem equivalent is `serde_json`).

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
