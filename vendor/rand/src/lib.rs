//! API-compatible stand-in for the subset of `rand` 0.8 this workspace uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement. [`rngs::StdRng`] is a xoshiro256++ generator seeded
//! through SplitMix64 — statistically solid for simulation seeding, although
//! its streams differ from the real `rand::rngs::StdRng` (ChaCha12). All
//! simulator results in this repository are defined by *this* generator's
//! streams; swapping in the real crate would shift sampled values (never the
//! analytical models).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits onto the half-open unit interval `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference xoshiro seeding recommends.
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extension traits.

    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
