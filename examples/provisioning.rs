//! Resource-provisioning scenario: a facility operator asks how many memory
//! modules and NICs an AWGR-disaggregated rack actually needs to serve the
//! observed production workload at the same computational throughput — the
//! Section VI-E analysis plus a flow-level sanity check of the fabric.
//!
//! Run with: `cargo run --release --example provisioning`

use photonic_disagg::fabric::flowsim::{Flow, FlowSimConfig, FlowSimulator};
use photonic_disagg::fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use photonic_disagg::rack::bandwidth::BandwidthSufficiency;
use photonic_disagg::rack::isoperf::IsoPerformanceAnalysis;
use photonic_disagg::workloads::production::ProductionDistributions;

fn main() {
    // How often does the fabric's direct bandwidth cover observed demand?
    let sufficiency = BandwidthSufficiency::paper(200_000, 2026);
    println!("Observed-demand coverage (from production utilization distributions):");
    println!(
        "  direct 125 Gbps path sufficient : {:.2}% of the time",
        sufficiency.direct_125gbps_sufficient * 100.0
    );
    println!(
        "  one 25 Gbps wavelength enough   : {:.2}% of the time",
        sufficiency.single_wavelength_sufficient * 100.0
    );

    // Iso-performance provisioning.
    let iso = IsoPerformanceAnalysis::paper();
    println!("\nIso-performance provisioning:");
    println!(
        "  DDR4 modules {} -> {}   NICs {} -> {}   CPUs {} -> {}   GPUs {} -> {}",
        iso.baseline.ddr4_modules,
        iso.disaggregated.ddr4_modules,
        iso.baseline.nics,
        iso.disaggregated.nics,
        iso.baseline.cpus,
        iso.disaggregated.cpus,
        iso.baseline.gpus,
        iso.disaggregated.gpus
    );
    println!(
        "  total modules {} -> {} ({:.1}% fewer chips)",
        iso.baseline.total(),
        iso.disaggregated.total(),
        iso.chip_reduction() * 100.0
    );

    // Sanity-check the reduced-memory rack with the flow simulator: the
    // remaining DDR4 MCMs must still absorb the sampled demand.
    let fabric = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs));
    let dist = ProductionDistributions::cori_haswell();
    let nodes = dist.sample_nodes_stable(128, 99);
    // After the 4x memory reduction only ~10 DDR4 MCMs remain (256 modules /
    // 27 per MCM); direct all sampled node demand at them.
    let ddr4_mcms = 10u32;
    let flows: Vec<Flow> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Flow::new(
                (i % 10) as u32,
                340 + (i as u32 % ddr4_mcms),
                n.memory_bandwidth_gbs * 8.0,
            )
        })
        .collect();
    let report = FlowSimulator::new(&fabric, FlowSimConfig::default()).run(&flows);
    println!("\nFlow-level check of the shrunken memory pool (128 nodes -> 10 DDR4 MCMs):");
    println!(
        "  offered {:.1} Gbps, satisfied {:.1} Gbps ({:.2}%), {:.1}% of flows needed indirect routing",
        report.offered_gbps,
        report.satisfied_gbps,
        report.satisfaction() * 100.0,
        report.indirect_fraction * 100.0
    );
}
