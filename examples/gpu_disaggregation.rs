//! GPU disaggregation study: evaluate the 24 GPU applications on the
//! A100-class analytical model with photonic (35 ns) and electronic (85 ns)
//! additional HBM latency — the GPU half of Figs. 9 and 12.
//!
//! Run with: `cargo run --release --example gpu_disaggregation`

use photonic_disagg::core::gpu_experiments::{
    average_slowdown, gpu_correlations, run_gpu_experiment, GpuExperimentConfig,
};
use photonic_disagg::core::report::format_gpu_results;

fn main() {
    let cfg = GpuExperimentConfig::default();
    let results = run_gpu_experiment(&cfg);

    println!(
        "{}",
        format_gpu_results(
            "GPU slowdown vs additional LLC-HBM latency",
            &results,
            &[25.0, 30.0, 35.0, 85.0]
        )
    );
    println!(
        "average slowdown: +35 ns -> {:.2}%   +85 ns -> {:.2}%",
        average_slowdown(&results, 35.0),
        average_slowdown(&results, 85.0)
    );
    let c = gpu_correlations(&results, 35.0);
    println!(
        "correlation of slowdown with L2 miss rate {:?}, HBM transactions {:?}",
        c.with_l2_miss_rate, c.with_hbm_transactions
    );

    // The Fig. 12 view: speedup of photonic over electronic disaggregation.
    let mut speedups: Vec<(String, f64)> = results
        .iter()
        .map(|r| (r.name.clone(), r.speedup_between(35.0, 85.0).unwrap_or(0.0)))
        .collect();
    speedups.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nTop-5 GPU speedups of photonic (35 ns) over electronic (85 ns) switches:");
    for (name, s) in speedups.iter().take(5) {
        println!("  {name:<16} {s:>6.2}%");
    }
}
