//! Latency-sensitivity study on a few representative CPU benchmarks: the
//! core experiment behind Figs. 6-8 of the paper, reduced to a handful of
//! benchmarks so it runs in a few seconds.
//!
//! Run with: `cargo run --release --example latency_study`

use photonic_disagg::core::cpu_experiments::{run_cpu_experiment_subset, CpuExperimentConfig};
use photonic_disagg::core::report::format_cpu_results;

fn main() {
    // Representative benchmarks: one latency-insensitive (swaptions), one
    // LLC-boundary case (streamcluster), the paper's worst case (nw), and a
    // random-access workload (canneal).
    let names = ["swaptions", "streamcluster", "nw", "canneal"];
    let cfg = CpuExperimentConfig {
        accesses_per_benchmark: 200_000,
        latencies_ns: vec![0.0, 25.0, 30.0, 35.0, 85.0],
        ..CpuExperimentConfig::default()
    };
    let mut results = run_cpu_experiment_subset(&cfg, |b| names.contains(&b.name.as_str()));
    results.sort_by_key(|a| a.benchmark.id());

    println!(
        "{}",
        format_cpu_results(
            "Slowdown vs additional LLC-memory latency (in-order and OOO cores)",
            &results,
            &cfg.latencies_ns
        )
    );
    println!("LLC miss rates:");
    for r in &results {
        if r.core_kind == cpusim::CoreKind::InOrder {
            println!("  {:<38} {:.1}%", r.benchmark.id(), r.llc_miss_rate * 100.0);
        }
    }
}
