//! Quickstart: build the paper's photonically-disaggregated rack, print its
//! headline properties, and check the paper's analytical claims.
//!
//! Run with: `cargo run --release --example quickstart`

use photonic_disagg::core::rack_analysis::RackAnalysis;
use photonic_disagg::core::rack_builder::DisaggregatedRack;
use photonic_disagg::core::report::format_rack_analysis;
use photonic_disagg::fabric::rackfabric::FabricKind;

fn main() {
    // 1. Build the rack of the paper: 128 GPU-accelerated nodes repacked
    //    into 350 single-chip-type MCMs connected by six parallel AWGRs.
    let rack = DisaggregatedRack::paper(FabricKind::ParallelAwgrs);
    let summary = rack.summary();

    println!("Photonically-disaggregated rack (case A: parallel AWGRs)");
    println!("  MCMs                    : {}", summary.total_mcms);
    println!("  chips packed            : {}", summary.total_chips);
    println!(
        "  escape bandwidth / MCM  : {:.0} GB/s",
        summary.mcm_escape_gbs
    );
    println!(
        "  min direct wavelengths  : {}",
        summary.fabric.min_direct_wavelengths
    );
    println!(
        "  min direct bandwidth    : {:.0} Gbps",
        summary.fabric.min_direct_bandwidth_gbps
    );
    println!(
        "  disaggregation latency  : {:.1} ns",
        summary.disaggregation_latency_ns
    );
    println!(
        "  photonic power          : {:.1} kW",
        summary.photonic_power_w / 1000.0
    );
    println!(
        "  photonic power overhead : {:.1} %",
        summary.photonic_overhead_percent
    );
    println!();

    // 2. Run the full analytical evaluation (Tables I-IV, BER, power,
    //    bandwidth sufficiency, iso-performance) and print it.
    let analysis = RackAnalysis::paper();
    println!("{}", format_rack_analysis(&analysis));
}
