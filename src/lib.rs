//! # photonic-disagg
//!
//! Umbrella crate for the reproduction of *"Efficient Intra-Rack Resource
//! Disaggregation for HPC Using Co-Packaged DWDM Photonics"* (CLUSTER 2023).
//!
//! This crate simply re-exports the workspace crates so that examples and
//! downstream users have a single dependency:
//!
//! * [`photonics`] — photonic links, switches, FEC/BER and power models.
//! * [`fabric`] — the rack-scale optical fabric, indirect routing, the flow
//!   simulator, the epoch-based timeline simulator with
//!   wavelength-reallocation policies, and the electronic-switch baselines.
//! * [`cpusim`] — the trace-driven CPU timing simulator.
//! * [`gpusim`] — the analytical GPU timing simulator.
//! * [`workloads`] — synthetic benchmark kernels, production utilization
//!   distributions, traffic patterns, and phased demand timelines.
//! * [`rack`] — rack/node/MCM configuration and iso-performance analysis.
//! * [`core`] — experiment drivers that regenerate every table and figure
//!   of the paper, and the declarative scenario-sweep engine
//!   ([`core::sweep`]) that executes arbitrary
//!   topology/wavelength/fabric/workload grids in parallel.
//!
//! See the repository's `ARCHITECTURE.md` for the crate dependency DAG and
//! the data flow from the device models up to the paper artifacts.

pub use cpusim;
pub use disagg_core as core;
pub use fabric;
pub use gpusim;
pub use photonics;
pub use rack;
pub use workloads;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
