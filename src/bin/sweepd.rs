//! `sweepd` — the checkpointed sweep-job daemon.
//!
//! Accepts [`SweepGrid`](disagg_core::sweep::SweepGrid) jobs as JSON files
//! (schema in `docs/OPERATIONS.md`), executes them through the
//! [`JobRunner`] shard cache, and streams results out as they complete.
//! Two modes:
//!
//! * `sweepd --oneshot FILE` — run one job file, print the merged report
//!   JSON on stdout.
//! * `sweepd --spool DIR` — drain `DIR/incoming/*.json` (sorted by file
//!   name): each job's merged report lands in `DIR/done/<stem>.result.json`
//!   and the job file moves next to it; unparseable jobs move to
//!   `DIR/failed/` with a `.error` note. With `--watch SECS` the daemon
//!   keeps polling the spool instead of exiting.
//!
//! Because every completed shard is checkpointed under the cache directory
//! before the next begins, a killed daemon loses at most one shard of work:
//! on restart the job file is still in `incoming/` and the finished shards
//! replay from the cache. `--max-shards K` exercises exactly that path by
//! suspending after K fresh shards (exit code 3, job left in `incoming/`).
//!
//! Jobs with a `sample` object run through the representative-scenario
//! sampler ([`SweepGrid::run_sampled`](disagg_core::sweep::SweepGrid::run_sampled)
//! semantics): shards cover the weighted representative list, are cached
//! under a composite `<grid_hash>-s<sample_hash>` key that never collides
//! with the exact grid's shards, and the per-job summary line carries a
//! `(sampled)` marker.
//!
//! Cross-scenario computation reuse (dedup-planned solving plus
//! demand-matrix memoization, byte-exact) is on by default; a job file may
//! set `"reuse":false` to disable it. The per-job summary line carries a
//! `(reuse N/M)` marker — N scenarios replayed out of M covered by the
//! executed shards' dedup plans.
//!
//! Exit codes: 0 success, 1 usage error, 2 job/spool failure, 3 suspended
//! by `--max-shards`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use disagg_core::jobs::{JobOutcome, JobRunner, JobSpec};

fn usage() -> ! {
    eprintln!(
        "usage: sweepd (--oneshot FILE | --spool DIR) [options]\n\
         \n\
         modes:\n\
         \x20 --oneshot FILE    run one job file, print merged report JSON to stdout\n\
         \x20 --spool DIR       drain DIR/incoming/*.json into DIR/done/\n\
         \n\
         options:\n\
         \x20 --cache DIR       shard-cache root (default: SPOOL/cache, or ./sweepd-cache)\n\
         \x20 --threads N       default thread budget for jobs that set none\n\
         \x20 --max-shards K    suspend after K freshly executed shards (exit 3)\n\
         \x20 --watch SECS      spool mode: poll every SECS instead of exiting"
    );
    std::process::exit(1);
}

struct Options {
    oneshot: Option<PathBuf>,
    spool: Option<PathBuf>,
    cache: Option<PathBuf>,
    threads: Option<usize>,
    max_shards: Option<usize>,
    watch: Option<u64>,
}

fn parse_args() -> Options {
    let mut options = Options {
        oneshot: None,
        spool: None,
        cache: None,
        threads: None,
        max_shards: None,
        watch: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("sweepd: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--oneshot" => options.oneshot = Some(PathBuf::from(value("--oneshot"))),
            "--spool" => options.spool = Some(PathBuf::from(value("--spool"))),
            "--cache" => options.cache = Some(PathBuf::from(value("--cache"))),
            "--threads" => options.threads = parse_number(&value("--threads"), "--threads"),
            "--max-shards" => {
                options.max_shards = parse_number(&value("--max-shards"), "--max-shards")
            }
            "--watch" => options.watch = parse_number(&value("--watch"), "--watch"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sweepd: unknown flag {other}");
                usage();
            }
        }
    }
    if options.oneshot.is_some() == options.spool.is_some() {
        eprintln!("sweepd: exactly one of --oneshot and --spool is required");
        usage();
    }
    options
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Option<T> {
    match text.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("sweepd: bad value {text:?} for {flag}");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let options = parse_args();
    let cache = options.cache.clone().unwrap_or_else(|| {
        options
            .spool
            .as_ref()
            .map(|s| s.join("cache"))
            .unwrap_or_else(|| PathBuf::from("sweepd-cache"))
    });
    let runner = JobRunner::new(cache);
    if let Some(job_file) = &options.oneshot {
        return run_oneshot(&runner, &options, job_file);
    }
    run_spool(
        &runner,
        &options,
        options.spool.as_deref().expect("spool mode"),
    )
}

fn run_oneshot(runner: &JobRunner, options: &Options, job_file: &Path) -> ExitCode {
    match process_job(runner, options, job_file) {
        Ok(outcome) => {
            println!("{}", outcome.report.to_json());
            if outcome.suspended {
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("sweepd: {}: {message}", job_file.display());
            ExitCode::from(2)
        }
    }
}

fn run_spool(runner: &JobRunner, options: &Options, spool: &Path) -> ExitCode {
    let incoming = spool.join("incoming");
    let done = spool.join("done");
    let failed = spool.join("failed");
    for dir in [&incoming, &done, &failed] {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("sweepd: create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    loop {
        let jobs = match pending_jobs(&incoming) {
            Ok(jobs) => jobs,
            Err(message) => {
                eprintln!("sweepd: {message}");
                return ExitCode::from(2);
            }
        };
        for job_file in jobs {
            let stem = job_file
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("job")
                .to_string();
            match process_job(runner, options, &job_file) {
                Ok(outcome) if outcome.suspended => {
                    // Simulated crash: leave the job in incoming/ so a
                    // restarted daemon resumes it from the shard cache.
                    eprintln!(
                        "sweepd: job {stem} suspended after {} fresh shards (resume by rerunning)",
                        outcome.shards_executed
                    );
                    return ExitCode::from(3);
                }
                Ok(outcome) => {
                    let result = done.join(format!("{stem}.result.json"));
                    let write = fs::write(&result, outcome.report.to_json() + "\n")
                        .and_then(|()| fs::rename(&job_file, done.join(format!("{stem}.json"))));
                    if let Err(e) = write {
                        eprintln!("sweepd: finalize {stem}: {e}");
                        return ExitCode::from(2);
                    }
                }
                Err(message) => {
                    eprintln!("sweepd: job {stem} failed: {message}");
                    let note = failed.join(format!("{stem}.error"));
                    let _ = fs::write(&note, format!("{message}\n"));
                    let _ = fs::rename(&job_file, failed.join(format!("{stem}.json")));
                }
            }
        }
        match options.watch {
            Some(seconds) => std::thread::sleep(std::time::Duration::from_secs(seconds.max(1))),
            None => return ExitCode::SUCCESS,
        }
    }
}

/// Job files waiting in `incoming/`, sorted by file name for a
/// deterministic processing order.
fn pending_jobs(incoming: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        fs::read_dir(incoming).map_err(|e| format!("read {}: {e}", incoming.display()))?;
    let mut jobs: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    jobs.sort();
    Ok(jobs)
}

/// Parse and run one job file, logging a per-job summary line to stderr.
fn process_job(
    runner: &JobRunner,
    options: &Options,
    job_file: &Path,
) -> Result<JobOutcome, String> {
    let text = fs::read_to_string(job_file).map_err(|e| format!("read: {e}"))?;
    let mut spec = JobSpec::from_json(&text)?;
    if spec.threads.is_none() {
        spec.threads = options.threads;
    }
    let outcome = runner.run_with_limit(&spec, options.max_shards)?;
    eprintln!(
        "sweepd: job {} hash {} shards {} cached {} executed {} scenarios {}{}{}{}",
        job_file
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("job"),
        outcome.grid_hash,
        outcome.shards_total,
        outcome.shards_from_cache,
        outcome.shards_executed,
        outcome.scenarios_executed,
        if spec.sample.is_some() {
            " (sampled)"
        } else {
            ""
        },
        // Computation-reuse marker: followers replayed / scenarios covered
        // by the executed shards' dedup plans. Absent with "reuse":false.
        match outcome.reuse {
            Some(stats) => format!(
                " (reuse {}/{})",
                stats.followers_replayed,
                stats.scenarios()
            ),
            None => String::new(),
        },
        if outcome.suspended {
            " (suspended)"
        } else {
            ""
        },
    );
    Ok(outcome)
}
